//! Integration suite for `retcon-serve`: the determinism contract and
//! the single-flight accounting.
//!
//! The contract under test (DESIGN.md "Serving"): a served sweep's
//! record set, ordered by canonical index, is **byte-identical** to
//! running the same matrix offline through `retcon_lab::runner::run_jobs`
//! — regardless of client interleaving, connection count, or cache
//! state. Single-flight is pinned by run-count accounting: across every
//! interleaving tested, the daemon's `executed` counter equals the
//! number of *distinct* run keys submitted, never the number of
//! requested runs.

use retcon_lab::runner::{run_jobs, Job};
use retcon_serve::{Client, Server, ServerConfig, SweepRequest};
use retcon_workloads::{System, Workload};
use std::net::SocketAddr;
use std::thread::JoinHandle;

const SEED: u64 = retcon_lab::SEED;

fn spawn_server(workers: usize) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let mut client = Client::connect(&addr.to_string()).expect("connect for shutdown");
    client.shutdown().expect("shutdown ack");
    handle.join().expect("server thread").expect("server run");
}

fn stat(client: &mut Client, name: &str) -> u64 {
    let stats = client.stats().expect("stats");
    stats
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("missing stat `{name}`"))
}

fn sweep(id: u64, workloads: &[Workload], systems: &[System], cores: &[usize]) -> SweepRequest {
    SweepRequest {
        id,
        workloads: workloads.to_vec(),
        systems: systems.to_vec(),
        cores: cores.to_vec(),
        seeds: vec![SEED],
    }
}

/// The offline record set for a sweep, via the job-parallel runner the
/// lab uses for every published dataset.
fn offline(req: &SweepRequest) -> Vec<retcon_lab::RunRecord> {
    let jobs: Vec<Job> = req
        .explode()
        .into_iter()
        .map(|k| Job::new(k.workload, k.system, k.cores, k.seed))
        .collect();
    run_jobs(&jobs, 4).expect("offline run")
}

fn to_lines(records: &[retcon_lab::RunRecord]) -> Vec<String> {
    records.iter().map(|r| r.to_json().to_string()).collect()
}

/// Concurrent clients on overlapping matrices: every client's record set
/// is byte-identical to its offline run, and `executed` equals the
/// distinct-key union — the single-flight invariant.
#[test]
fn concurrent_overlapping_sweeps_match_offline_and_dedup() {
    let (addr, handle) = spawn_server(4);

    // Three overlapping matrices; union is eager×{1,2,4} ∪ RetCon×{1,2,4}
    // = 6 distinct keys, while 14 runs are requested in total.
    let reqs = [
        sweep(
            1,
            &[Workload::Counter],
            &[System::Eager, System::Retcon],
            &[1, 2],
        ),
        sweep(
            2,
            &[Workload::Counter],
            &[System::Eager, System::Retcon],
            &[2, 4],
        ),
        sweep(
            3,
            &[Workload::Counter],
            &[System::Eager, System::Retcon],
            &[1, 2, 4],
        ),
    ];
    let distinct: std::collections::HashSet<u128> = reqs
        .iter()
        .flat_map(|r| r.explode())
        .map(|k| k.content_hash())
        .collect();
    assert_eq!(distinct.len(), 6);

    let results: Vec<_> = std::thread::scope(|scope| {
        reqs.iter()
            .map(|req| {
                scope.spawn(move || {
                    let mut client = Client::connect(&addr.to_string()).expect("connect");
                    client.sweep(req).expect("sweep")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (req, result) in reqs.iter().zip(&results) {
        assert_eq!(
            to_lines(&result.records),
            to_lines(&offline(req)),
            "sweep {} served records differ from offline runner output",
            req.id
        );
    }

    let mut client = Client::connect(&addr.to_string()).expect("connect");
    assert_eq!(
        stat(&mut client, "executed"),
        distinct.len() as u64,
        "single-flight violated: executions exceed distinct keys"
    );
    let total_runs: u64 = results.iter().map(|r| r.records.len() as u64).sum();
    assert_eq!(total_runs, 14);
    let accounted: u64 = results.iter().map(|r| r.hits + r.joined + r.misses).sum();
    assert_eq!(accounted, total_runs, "every run classified exactly once");

    shutdown(addr, handle);
}

/// Staggered replay: a second sweep overlapping a completed one is
/// served from the store for at least the overlap, and its records stay
/// byte-identical to offline output.
#[test]
fn staggered_overlap_hits_the_store() {
    let (addr, handle) = spawn_server(2);
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    let first = sweep(
        1,
        &[Workload::Counter],
        &[System::Eager, System::Retcon],
        &[1, 2],
    );
    let second = sweep(
        2,
        &[Workload::Counter],
        &[System::Eager, System::Retcon],
        &[1, 2, 4],
    );
    let cold = client.sweep(&first).expect("cold sweep");
    assert_eq!((cold.hits, cold.misses), (0, 4));

    let warm = client.sweep(&second).expect("warm sweep");
    // 4 of 6 runs overlap the finished first sweep — all must hit.
    assert_eq!(warm.hits, 4, "overlap not served from the store");
    assert_eq!(warm.misses, 2);
    assert_eq!(to_lines(&warm.records), to_lines(&offline(&second)));
    // Cache flags line up with the canonical order: cores 4 entries are
    // the misses.
    for (key, &cached) in second.explode().iter().zip(&warm.cached) {
        assert_eq!(cached, key.cores != 4, "cache flag wrong for {key:?}");
    }

    // Identical replay: 100% hit rate, still byte-identical.
    let replay = client
        .sweep(&sweep(
            3,
            &[Workload::Counter],
            &[System::Eager, System::Retcon],
            &[1, 2, 4],
        ))
        .expect("replay sweep");
    assert_eq!((replay.hits, replay.misses), (6, 0));
    assert!((replay.hit_rate() - 1.0).abs() < f64::EPSILON);
    assert_eq!(to_lines(&replay.records), to_lines(&warm.records));

    shutdown(addr, handle);
}

/// The same duplicate-heavy load pushed through different connection
/// interleavings always executes each distinct key once.
#[test]
fn single_flight_holds_across_interleavings() {
    let req = sweep(
        7,
        &[Workload::Counter],
        &[System::Eager, System::Lazy],
        &[1, 2],
    );
    let distinct = req.explode().len() as u64;

    // Interleaving A: N clients fire the identical sweep simultaneously.
    // Interleaving B: one connection pipelines it back-to-back.
    // Interleaving C: sequential fresh connections.
    for (label, workers, clients, sequential) in [
        ("simultaneous", 4, 4, false),
        ("pipelined", 1, 1, false),
        ("sequential", 2, 3, true),
    ] {
        let (addr, handle) = spawn_server(workers);
        if sequential {
            for _ in 0..clients {
                let mut c = Client::connect(&addr.to_string()).expect("connect");
                c.sweep(&req).expect("sweep");
            }
        } else if clients == 1 {
            let mut c = Client::connect(&addr.to_string()).expect("connect");
            for _ in 0..3 {
                c.sweep(&req).expect("sweep");
            }
        } else {
            std::thread::scope(|scope| {
                for _ in 0..clients {
                    scope.spawn(|| {
                        let mut c = Client::connect(&addr.to_string()).expect("connect");
                        c.sweep(&req).expect("sweep");
                    });
                }
            });
        }
        let mut c = Client::connect(&addr.to_string()).expect("connect");
        assert_eq!(
            stat(&mut c, "executed"),
            distinct,
            "interleaving `{label}`: executions exceed distinct keys"
        );
        shutdown(addr, handle);
    }
}

/// Shutdown drains: the daemon acknowledges, stops accepting sweeps, and
/// `Server::run` returns.
#[test]
fn shutdown_drains_and_rejects_new_sweeps() {
    let (addr, handle) = spawn_server(2);
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let req = sweep(1, &[Workload::Counter], &[System::Eager], &[1]);
    client.sweep(&req).expect("sweep before drain");

    assert_eq!(client.shutdown().expect("shutdown ack"), "draining");
    // The drained daemon rejects further sweeps on this connection...
    let err = client.sweep(&req).expect_err("sweep after drain");
    assert!(err.contains("draining"), "unexpected error: {err}");
    handle.join().expect("server thread").expect("server run");
    // ...and accepts no new connections once run() returned.
    assert!(
        Client::connect(&addr.to_string()).is_err() || {
            let mut c = Client::connect(&addr.to_string()).expect("connect");
            c.sweep(&req).is_err()
        }
    );
}
