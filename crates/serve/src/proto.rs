//! The wire format: line-delimited JSON over a plain TCP socket.
//!
//! Requests and responses are single-line compact JSON documents
//! terminated by `\n`, using the same hand-rolled [`Json`] the records
//! are built from (the build environment has no HTTP or serde crates, by
//! design — see DESIGN.md "Offline dependency shims").
//!
//! ## Requests (client → server)
//!
//! ```text
//! {"type":"sweep","id":1,"workloads":["counter"],"systems":["eager","RetCon"],"cores":[1,2],"seeds":[42]}
//! {"type":"stats"}
//! {"type":"metrics"}
//! {"type":"shutdown"}
//! ```
//!
//! A sweep names a `workloads × systems × cores × seeds` matrix. The
//! server explodes it into per-run [`RunKey`]s in **canonical order**
//! (workload-major, then system, then cores, then seed — the nesting
//! order of the request arrays) and addresses each by content hash.
//!
//! ## Responses (server → client)
//!
//! ```text
//! {"type":"record","id":1,"index":0,"cached":true,"run":{...}}
//! {"type":"done","id":1,"runs":4,"hits":2,"joined":1,"misses":1,"errors":0}
//! {"type":"stats","executed":12,...}
//! {"type":"metrics","text":"# TYPE retcon_serve_executed counter\n..."}
//! {"type":"ok","message":"draining"}
//! {"type":"error","id":1,"message":"..."}
//! ```
//!
//! The `metrics` reply carries the daemon's whole metrics registry as a
//! Prometheus text exposition document, JSON-escaped into one line.
//!
//! Record lines stream back **as runs finish**, so their arrival order
//! depends on scheduling; the `index` field is the run's position in the
//! canonical explosion, and re-ordering by index recovers a record set
//! byte-identical to the offline runner's output.

use retcon_lab::RunKey;
use retcon_lab::RunRecord;
use retcon_sim::json::Json;
use retcon_workloads::{System, Workload};

/// A sweep request: the cross-product matrix plus a client-chosen id
/// that multiplexes concurrent sweeps on one connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// Client-chosen request id, echoed on every response line.
    pub id: u64,
    /// Workloads, by Table 2 label.
    pub workloads: Vec<Workload>,
    /// Systems, by figure label.
    pub systems: Vec<System>,
    /// Core counts.
    pub cores: Vec<usize>,
    /// Workload-build seeds.
    pub seeds: Vec<u64>,
}

impl SweepRequest {
    /// The per-run keys of this sweep, in canonical order (the nesting
    /// order of the request arrays: workload-major, then system, then
    /// cores, then seed).
    pub fn explode(&self) -> Vec<RunKey> {
        let mut keys =
            Vec::with_capacity(self.workloads.len() * self.systems.len() * self.cores.len());
        for &w in &self.workloads {
            for &s in &self.systems {
                for &c in &self.cores {
                    for &seed in &self.seeds {
                        keys.push(RunKey::new(w, s, c, seed));
                    }
                }
            }
        }
        keys
    }

    /// The request as a compact JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type", Json::str("sweep")),
            ("id", Json::UInt(self.id)),
            (
                "workloads",
                Json::Arr(
                    self.workloads
                        .iter()
                        .map(|w| Json::str(w.label()))
                        .collect(),
                ),
            ),
            (
                "systems",
                Json::Arr(self.systems.iter().map(|s| Json::str(s.label())).collect()),
            ),
            (
                "cores",
                Json::Arr(self.cores.iter().map(|&c| Json::UInt(c as u64)).collect()),
            ),
            (
                "seeds",
                Json::Arr(self.seeds.iter().map(|&s| Json::UInt(s)).collect()),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<SweepRequest, String> {
        let mut workloads = Vec::new();
        for v in json.req_arr("workloads")? {
            let label = v.as_str().ok_or("workloads: non-string entry")?;
            workloads
                .push(Workload::parse(label).ok_or_else(|| format!("unknown workload `{label}`"))?);
        }
        let mut systems = Vec::new();
        for v in json.req_arr("systems")? {
            let label = v.as_str().ok_or("systems: non-string entry")?;
            systems.push(System::parse(label).ok_or_else(|| format!("unknown system `{label}`"))?);
        }
        let mut cores = Vec::new();
        for v in json.req_arr("cores")? {
            let n = v.as_u64().ok_or("cores: non-integer entry")?;
            if !(1..=64).contains(&n) {
                return Err(format!("cores value {n} outside 1..=64"));
            }
            cores.push(n as usize);
        }
        let mut seeds = Vec::new();
        for v in json.req_arr("seeds")? {
            seeds.push(v.as_u64().ok_or("seeds: non-integer entry")?);
        }
        if workloads.is_empty() || systems.is_empty() || cores.is_empty() || seeds.is_empty() {
            return Err("sweep matrix has an empty dimension".to_string());
        }
        Ok(SweepRequest {
            id: json.req_u64("id")?,
            workloads,
            systems,
            cores,
            seeds,
        })
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run (or serve from cache) a sweep matrix.
    Sweep(SweepRequest),
    /// Report service counters.
    Stats,
    /// Report the metrics registry as Prometheus text exposition.
    Metrics,
    /// Drain in-flight work and stop the daemon.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Describes malformed JSON, unknown types, and invalid sweep
    /// matrices (unknown labels, out-of-range cores, empty dimensions).
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let json = Json::parse(line).map_err(|e| e.to_string())?;
        match json.req_str("type")? {
            "sweep" => Ok(Request::Sweep(SweepRequest::from_json(&json)?)),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type `{other}`")),
        }
    }

    /// The request as one compact line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Sweep(sweep) => sweep.to_json().to_string(),
            Request::Stats => Json::obj(vec![("type", Json::str("stats"))]).to_string(),
            Request::Metrics => Json::obj(vec![("type", Json::str("metrics"))]).to_string(),
            Request::Shutdown => Json::obj(vec![("type", Json::str("shutdown"))]).to_string(),
        }
    }
}

/// The `done` summary closing a sweep's response stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoneSummary {
    /// The sweep's request id.
    pub id: u64,
    /// Total runs in the sweep.
    pub runs: u64,
    /// Runs served from the result store (memory or spill).
    pub hits: u64,
    /// Runs joined onto an execution already in flight (single-flight).
    pub joined: u64,
    /// Runs this sweep caused to execute.
    pub misses: u64,
    /// Runs that failed with a simulation error.
    pub errors: u64,
}

/// A parsed response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One finished run of a sweep.
    Record {
        /// The sweep's request id.
        id: u64,
        /// Position in the sweep's canonical explosion.
        index: u64,
        /// Whether the run was served from the result store.
        cached: bool,
        /// The run record — byte-identical to offline runner output.
        /// Boxed: a record dwarfs every other variant.
        run: Box<RunRecord>,
    },
    /// Sweep complete; dedup accounting.
    Done(DoneSummary),
    /// Service counters, in emission order.
    Stats(Vec<(String, u64)>),
    /// The metrics registry as Prometheus text exposition.
    Metrics(String),
    /// Acknowledgement (e.g. shutdown accepted).
    Ok(String),
    /// A failed request or run. `id`/`index` are present when the error
    /// belongs to a specific sweep run.
    Error {
        /// The sweep's request id, if the error belongs to one.
        id: Option<u64>,
        /// The run's canonical index, if the error belongs to one.
        index: Option<u64>,
        /// Human-readable cause.
        message: String,
    },
}

/// Formats a record line around an already-serialized compact run
/// payload. The server serializes each finished run **once** and splices
/// it into every waiting client's envelope.
pub fn record_line(id: u64, index: u64, cached: bool, run_json: &str) -> String {
    format!("{{\"type\":\"record\",\"id\":{id},\"index\":{index},\"cached\":{cached},\"run\":{run_json}}}")
}

/// Formats a `done` summary line.
pub fn done_line(s: &DoneSummary) -> String {
    format!(
        "{{\"type\":\"done\",\"id\":{},\"runs\":{},\"hits\":{},\"joined\":{},\"misses\":{},\"errors\":{}}}",
        s.id, s.runs, s.hits, s.joined, s.misses, s.errors
    )
}

/// Formats a stats line from ordered counters.
pub fn stats_line(fields: &[(String, u64)]) -> String {
    let mut json = vec![("type".to_string(), Json::str("stats"))];
    json.extend(fields.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))));
    Json::Obj(json).to_string()
}

/// Formats a metrics line: the exposition document JSON-escaped into a
/// single `text` field.
pub fn metrics_line(text: &str) -> String {
    Json::obj(vec![
        ("type", Json::str("metrics")),
        ("text", Json::str(text)),
    ])
    .to_string()
}

/// Formats an acknowledgement line.
pub fn ok_line(message: &str) -> String {
    Json::obj(vec![
        ("type", Json::str("ok")),
        ("message", Json::str(message)),
    ])
    .to_string()
}

/// Formats an error line.
pub fn error_line(id: Option<u64>, index: Option<u64>, message: &str) -> String {
    let mut fields = vec![("type", Json::str("error"))];
    if let Some(id) = id {
        fields.push(("id", Json::UInt(id)));
    }
    if let Some(index) = index {
        fields.push(("index", Json::UInt(index)));
    }
    fields.push(("message", Json::str(message)));
    Json::obj(fields).to_string()
}

impl Response {
    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// Describes malformed JSON and unknown response types.
    pub fn parse_line(line: &str) -> Result<Response, String> {
        let json = Json::parse(line).map_err(|e| e.to_string())?;
        match json.req_str("type")? {
            "record" => Ok(Response::Record {
                id: json.req_u64("id")?,
                index: json.req_u64("index")?,
                cached: matches!(json.get("cached"), Some(Json::Bool(true))),
                run: Box::new(RunRecord::from_json(
                    json.get("run")
                        .ok_or_else(|| "missing field `run`".to_string())?,
                )?),
            }),
            "done" => Ok(Response::Done(DoneSummary {
                id: json.req_u64("id")?,
                runs: json.req_u64("runs")?,
                hits: json.req_u64("hits")?,
                joined: json.req_u64("joined")?,
                misses: json.req_u64("misses")?,
                errors: json.req_u64("errors")?,
            })),
            "stats" => {
                let Json::Obj(fields) = &json else {
                    return Err("stats: not an object".to_string());
                };
                let mut out = Vec::new();
                for (k, v) in fields {
                    if k == "type" {
                        continue;
                    }
                    out.push((
                        k.clone(),
                        v.as_u64()
                            .ok_or_else(|| format!("stats field `{k}`: non-integer"))?,
                    ));
                }
                Ok(Response::Stats(out))
            }
            "metrics" => Ok(Response::Metrics(json.req_str("text")?.to_string())),
            "ok" => Ok(Response::Ok(json.req_str("message")?.to_string())),
            "error" => Ok(Response::Error {
                id: json.get("id").and_then(Json::as_u64),
                index: json.get("index").and_then(Json::as_u64),
                message: json.req_str("message")?.to_string(),
            }),
            other => Err(format!("unknown response type `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> SweepRequest {
        SweepRequest {
            id: 7,
            workloads: vec![Workload::Counter, Workload::Genome { resizable: true }],
            systems: vec![System::Eager, System::Retcon],
            cores: vec![1, 2],
            seeds: vec![42],
        }
    }

    #[test]
    fn sweep_round_trips_and_explodes_canonically() {
        let req = sweep();
        let line = Request::Sweep(req.clone()).to_line();
        assert!(!line.contains('\n'));
        assert_eq!(Request::parse_line(&line), Ok(Request::Sweep(req.clone())));

        let keys = req.explode();
        assert_eq!(keys.len(), 8);
        // Workload-major, then system, then cores.
        assert_eq!(keys[0].workload, Workload::Counter);
        assert_eq!((keys[0].system, keys[0].cores), (System::Eager, 1));
        assert_eq!((keys[1].system, keys[1].cores), (System::Eager, 2));
        assert_eq!((keys[2].system, keys[2].cores), (System::Retcon, 1));
        assert_eq!(keys[4].workload, Workload::Genome { resizable: true });
    }

    #[test]
    fn invalid_sweeps_are_rejected() {
        let bad = r#"{"type":"sweep","id":1,"workloads":["nope"],"systems":["eager"],"cores":[1],"seeds":[1]}"#;
        assert!(Request::parse_line(bad)
            .unwrap_err()
            .contains("unknown workload"));
        let zero = r#"{"type":"sweep","id":1,"workloads":["counter"],"systems":["eager"],"cores":[0],"seeds":[1]}"#;
        assert!(Request::parse_line(zero).unwrap_err().contains("1..=64"));
        let empty = r#"{"type":"sweep","id":1,"workloads":["counter"],"systems":[],"cores":[1],"seeds":[1]}"#;
        assert!(Request::parse_line(empty)
            .unwrap_err()
            .contains("empty dimension"));
    }

    #[test]
    fn control_lines_round_trip() {
        assert_eq!(
            Request::parse_line(&Request::Stats.to_line()),
            Ok(Request::Stats)
        );
        assert_eq!(
            Request::parse_line(&Request::Shutdown.to_line()),
            Ok(Request::Shutdown)
        );
        assert_eq!(
            Request::parse_line(&Request::Metrics.to_line()),
            Ok(Request::Metrics)
        );
        // The exposition document embeds newlines and quotes; the line
        // must stay single-line and round-trip them exactly.
        let doc =
            "# TYPE retcon_serve_executed counter\nretcon_serve_executed 5\nh_bucket{le=\"1\"} 2\n";
        let line = metrics_line(doc);
        assert!(!line.contains('\n'));
        assert_eq!(
            Response::parse_line(&line),
            Ok(Response::Metrics(doc.to_string()))
        );
        let done = DoneSummary {
            id: 3,
            runs: 4,
            hits: 1,
            joined: 1,
            misses: 2,
            errors: 0,
        };
        assert_eq!(
            Response::parse_line(&done_line(&done)),
            Ok(Response::Done(done))
        );
        assert_eq!(
            Response::parse_line(&ok_line("draining")),
            Ok(Response::Ok("draining".to_string()))
        );
        let fields = vec![("executed".to_string(), 5), ("queue_depth".to_string(), 0)];
        assert_eq!(
            Response::parse_line(&stats_line(&fields)),
            Ok(Response::Stats(fields))
        );
        assert_eq!(
            Response::parse_line(&error_line(Some(1), None, "busy")),
            Ok(Response::Error {
                id: Some(1),
                index: None,
                message: "busy".to_string()
            })
        );
    }

    #[test]
    fn record_lines_parse_back() {
        let key = RunKey::new(Workload::Counter, System::Eager, 1, 42);
        let run = retcon_lab::engine::record_for(&key, retcon_lab::engine::simulate(&key).unwrap());
        let line = record_line(9, 3, true, &run.to_json().to_string());
        match Response::parse_line(&line).unwrap() {
            Response::Record {
                id,
                index,
                cached,
                run: parsed,
            } => {
                assert_eq!((id, index, cached), (9, 3, true));
                assert_eq!(*parsed, run);
            }
            other => panic!("expected record, got {other:?}"),
        }
    }
}
