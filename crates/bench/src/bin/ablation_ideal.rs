//! §5.3 idealized-system comparison.
//!
//! The paper: *"we ran a variant of RETCON that could track unlimited
//! state, reacquired blocks in parallel at commit, and assumed no latency
//! to reperform stores into the cache at commit. These changes did not
//! significantly impact results on any of our workloads."*
//!
//! Like every figure/table bin, this is a thin wrapper over the
//! `retcon-lab` dataset of the same name: it regenerates the record
//! (job-parallel with `--jobs N`) and renders the historical stdout
//! table, or emits the machine-readable record with `--json` / `--csv`
//! (`--out DIR` writes both files).

use std::process::ExitCode;

fn main() -> ExitCode {
    retcon_lab::cli::bin_main(retcon_lab::Dataset::AblationIdeal)
}
