//! The initial value buffer (IVB).
//!
//! Figure 5 of the paper: *"The Initial value buffer is a cache-like
//! structure indexed by data address. Each entry contains the address tag
//! bits, the initial concrete value of the symbolic memory location, and the
//! symbolic constraints associated with that memory location (if any)."*
//!
//! Per the §4.4 optimizations, entries are maintained at cache-block
//! granularity (a symbolic load starts tracking the whole 64-byte block) and
//! equality constraints are compressed into per-word *equality bits* stored
//! directly in the entry. Interval constraints live in the engine's separate
//! constraint buffer. Each entry additionally records a *written* bit (§4.4,
//! "avoidance of upgrade misses during pre-commit": blocks that will receive
//! commit-time stores are reacquired with write permission directly) and a
//! *lost* bit for the Table 3 "blocks lost" statistic.

use retcon_isa::{Addr, BlockAddr, WORDS_PER_BLOCK};

/// One block-granularity entry of the initial value buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IvbEntry {
    block: BlockAddr,
    initial: [u64; WORDS_PER_BLOCK as usize],
    /// Final values, filled in by pre-commit step 1; until then a copy of
    /// `initial`.
    current: [u64; WORDS_PER_BLOCK as usize],
    /// Per-word equality bits (§4.4 compressed equality constraints).
    equality: u8,
    /// Block will be written at commit (reacquire with write permission).
    written: bool,
    /// Block was stolen away at least once during the transaction.
    lost: bool,
}

impl IvbEntry {
    /// The block this entry tracks.
    pub fn block(&self) -> BlockAddr {
        self.block
    }

    /// The initial value recorded for `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not within this entry's block.
    pub fn initial(&self, addr: Addr) -> u64 {
        assert!(
            self.block.contains(addr),
            "{addr:?} not in {:?}",
            self.block
        );
        self.initial[addr.offset_in_block() as usize]
    }

    /// The current (commit-time) value recorded for `addr`.
    pub fn current(&self, addr: Addr) -> u64 {
        assert!(
            self.block.contains(addr),
            "{addr:?} not in {:?}",
            self.block
        );
        self.current[addr.offset_in_block() as usize]
    }

    /// Whether `addr` carries an equality bit.
    pub fn has_equality(&self, addr: Addr) -> bool {
        self.equality & (1 << addr.offset_in_block()) != 0
    }

    /// Number of words with equality bits set.
    pub fn equality_count(&self) -> usize {
        self.equality.count_ones() as usize
    }

    /// Whether the block was stolen during the transaction.
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    /// Whether the block receives commit-time stores.
    pub fn is_written(&self) -> bool {
        self.written
    }
}

/// The initial value buffer: a small, capacity-limited set of tracked
/// blocks.
///
/// With the paper's default of 16 entries a linear scan is faster than any
/// indexed structure, and keeps the implementation obviously correct.
#[derive(Debug, Clone, Default)]
pub struct Ivb {
    entries: Vec<IvbEntry>,
    capacity: usize,
    /// Presence filter: bit `block % 64` set for every tracked block. No
    /// false negatives (entries are only removed by `clear`, which resets
    /// it), so a clear bit short-circuits the miss path of every
    /// `contains`/`get` without scanning — loads of untracked blocks are
    /// the overwhelmingly common case.
    filter: u64,
}

impl Ivb {
    #[inline]
    fn filter_bit(block: BlockAddr) -> u64 {
        1u64 << (block.0 & 63)
    }
}

impl Ivb {
    /// Creates an empty buffer holding at most `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        Ivb {
            entries: Vec::new(),
            capacity,
            filter: 0,
        }
    }

    /// Number of tracked blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no blocks are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if another block can be tracked.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// `true` if `block` is tracked.
    #[inline]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.filter & Self::filter_bit(block) != 0 && self.entries.iter().any(|e| e.block == block)
    }

    /// The entry for `block`, if tracked.
    #[inline]
    pub fn get(&self, block: BlockAddr) -> Option<&IvbEntry> {
        if self.filter & Self::filter_bit(block) == 0 {
            return None;
        }
        self.entries.iter().find(|e| e.block == block)
    }

    fn get_mut(&mut self, block: BlockAddr) -> Option<&mut IvbEntry> {
        if self.filter & Self::filter_bit(block) == 0 {
            return None;
        }
        self.entries.iter_mut().find(|e| e.block == block)
    }

    /// Starts tracking `block`, capturing the initial value of each of its
    /// words via `read_word`. Returns `false` (and tracks nothing) if the
    /// buffer is full; re-tracking an already-tracked block is a no-op
    /// returning `true`.
    pub fn allocate(&mut self, block: BlockAddr, mut read_word: impl FnMut(Addr) -> u64) -> bool {
        if self.contains(block) {
            return true;
        }
        if !self.has_room() {
            return false;
        }
        let mut initial = [0u64; WORDS_PER_BLOCK as usize];
        for (i, w) in block.words().enumerate() {
            initial[i] = read_word(w);
        }
        self.entries.push(IvbEntry {
            block,
            initial,
            current: initial,
            equality: 0,
            written: false,
            lost: false,
        });
        self.filter |= Self::filter_bit(block);
        true
    }

    /// Sets the equality bit for `addr`. Returns `false` if the word's block
    /// is not tracked (a protocol error: symbolic values always root at
    /// tracked words).
    pub fn set_equality(&mut self, addr: Addr) -> bool {
        match self.get_mut(addr.block()) {
            Some(e) => {
                e.equality |= 1 << addr.offset_in_block();
                true
            }
            None => false,
        }
    }

    /// Marks `block` as receiving commit-time stores.
    pub fn mark_written(&mut self, block: BlockAddr) {
        if let Some(e) = self.get_mut(block) {
            e.written = true;
        }
    }

    /// Marks `block` as stolen.
    pub fn mark_lost(&mut self, block: BlockAddr) {
        if let Some(e) = self.get_mut(block) {
            e.lost = true;
        }
    }

    /// Captures the commit-time value of every word of every tracked block
    /// (pre-commit step 1a) via `read_word`, visiting entries in allocation
    /// order and words in ascending address order — one pass, no per-commit
    /// scratch allocation.
    pub fn capture_currents(&mut self, mut read_word: impl FnMut(Addr) -> u64) {
        for e in &mut self.entries {
            let base = e.block.base().0;
            for (i, cur) in e.current.iter_mut().enumerate() {
                *cur = read_word(Addr(base + i as u64));
            }
        }
    }

    /// Records the commit-time value of `addr` (pre-commit step 1).
    pub fn set_current(&mut self, addr: Addr, value: u64) {
        if let Some(e) = self.get_mut(addr.block()) {
            e.current[addr.offset_in_block() as usize] = value;
        }
    }

    /// The commit-time value of `addr`, if its block is tracked.
    pub fn current(&self, addr: Addr) -> Option<u64> {
        self.get(addr.block()).map(|e| e.current(addr))
    }

    /// The initial value of `addr`, if its block is tracked.
    pub fn initial(&self, addr: Addr) -> Option<u64> {
        self.get(addr.block()).map(|e| e.initial(addr))
    }

    /// Iterates over tracked entries in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = &IvbEntry> {
        self.entries.iter()
    }

    /// The `i`-th entry in allocation order (index-based iteration lets the
    /// commit path interleave entry visits with `&mut` protocol work
    /// without collecting the entries first).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn entry_at(&self, i: usize) -> &IvbEntry {
        &self.entries[i]
    }

    /// Number of blocks marked lost.
    pub fn lost_count(&self) -> usize {
        self.entries.iter().filter(|e| e.lost).count()
    }

    /// Total equality bits set across all entries.
    pub fn equality_count(&self) -> usize {
        self.entries.iter().map(|e| e.equality_count()).sum()
    }

    /// Forgets all entries (transaction end).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.filter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: u64) -> BlockAddr {
        BlockAddr(n)
    }

    #[test]
    fn allocate_captures_all_words() {
        let mut ivb = Ivb::new(16);
        assert!(ivb.allocate(blk(2), |a| a.0 * 10));
        let e = ivb.get(blk(2)).unwrap();
        for w in blk(2).words() {
            assert_eq!(e.initial(w), w.0 * 10);
            assert_eq!(e.current(w), w.0 * 10);
        }
        assert_eq!(ivb.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut ivb = Ivb::new(2);
        assert!(ivb.allocate(blk(0), |_| 0));
        assert!(ivb.allocate(blk(1), |_| 0));
        assert!(!ivb.has_room());
        assert!(!ivb.allocate(blk(2), |_| 0));
        // Re-allocating a tracked block still succeeds.
        assert!(ivb.allocate(blk(1), |_| 99));
        // ...and does not overwrite the captured initial values.
        assert_eq!(ivb.get(blk(1)).unwrap().initial(blk(1).base()), 0);
    }

    #[test]
    fn equality_bits_per_word() {
        let mut ivb = Ivb::new(4);
        ivb.allocate(blk(1), |_| 7);
        let w0 = blk(1).base();
        let w3 = Addr(w0.0 + 3);
        assert!(ivb.set_equality(w3));
        let e = ivb.get(blk(1)).unwrap();
        assert!(e.has_equality(w3));
        assert!(!e.has_equality(w0));
        assert_eq!(e.equality_count(), 1);
        assert_eq!(ivb.equality_count(), 1);
        // Untracked block: cannot set.
        assert!(!ivb.set_equality(Addr(999)));
    }

    #[test]
    fn lost_and_written_flags() {
        let mut ivb = Ivb::new(4);
        ivb.allocate(blk(5), |_| 0);
        assert!(!ivb.get(blk(5)).unwrap().is_lost());
        ivb.mark_lost(blk(5));
        ivb.mark_written(blk(5));
        let e = ivb.get(blk(5)).unwrap();
        assert!(e.is_lost() && e.is_written());
        assert_eq!(ivb.lost_count(), 1);
        // Marking an untracked block is a no-op.
        ivb.mark_lost(blk(9));
        assert_eq!(ivb.lost_count(), 1);
    }

    #[test]
    fn current_values_update() {
        let mut ivb = Ivb::new(4);
        ivb.allocate(blk(0), |_| 1);
        let w = Addr(3);
        ivb.set_current(w, 42);
        assert_eq!(ivb.current(w), Some(42));
        assert_eq!(ivb.initial(w), Some(1));
        assert_eq!(ivb.current(Addr(100)), None);
    }

    #[test]
    fn clear_empties() {
        let mut ivb = Ivb::new(4);
        ivb.allocate(blk(0), |_| 1);
        ivb.clear();
        assert!(ivb.is_empty());
        assert!(!ivb.contains(blk(0)));
    }

    #[test]
    #[should_panic(expected = "not in")]
    fn initial_outside_block_panics() {
        let mut ivb = Ivb::new(4);
        ivb.allocate(blk(0), |_| 1);
        let _ = ivb.get(blk(0)).unwrap().initial(Addr(8));
    }
}
