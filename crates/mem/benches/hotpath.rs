//! Micro-benchmarks for the memory-system hot path (vendored criterion
//! shim; layout mirrors the `benches/` convention of the related
//! `Erigara__mv` repo's storage benches).
//!
//! The `plan`/`access_planned` pair and the conflict check are the
//! per-memory-access inner loop of every protocol; these benches pin their
//! cost so regressions show up without running the full `retcon-lab`
//! macro-benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use retcon_isa::Addr;
use retcon_mem::{AccessKind, CoreId, MemConfig, MemorySystem};

/// The conflict-free cache-hit path: one `plan` + `access_planned` per
/// iteration, exactly what a protocol issues for a warm load.
fn bench_hit_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("hit_path");
    group.bench_function("plan_access_read_l1_hit", |b| {
        let mut ms: MemorySystem = MemorySystem::new(MemConfig::default(), 4);
        ms.access(CoreId(0), Addr(0), AccessKind::Read, false);
        b.iter(|| {
            let plan = ms.plan(CoreId(0), Addr(0), AccessKind::Read);
            debug_assert!(!plan.has_conflicts());
            black_box(ms.access_planned(&plan, false))
        })
    });
    group.bench_function("plan_access_write_owned_l1_hit", |b| {
        let mut ms: MemorySystem = MemorySystem::new(MemConfig::default(), 4);
        ms.access(CoreId(0), Addr(0), AccessKind::Write, false);
        b.iter(|| {
            let plan = ms.plan(CoreId(0), Addr(0), AccessKind::Write);
            black_box(ms.access_planned(&plan, false))
        })
    });
    group.bench_function("speculative_hit_and_clear", |b| {
        // A two-access transaction: spec-read + spec-write on warm blocks,
        // then commit-time clear. Steady state allocates nothing.
        let mut ms: MemorySystem = MemorySystem::new(MemConfig::default(), 4);
        ms.access(CoreId(0), Addr(0), AccessKind::Write, false);
        ms.access(CoreId(0), Addr(8), AccessKind::Write, false);
        b.iter(|| {
            let plan = ms.plan(CoreId(0), Addr(0), AccessKind::Read);
            black_box(ms.access_planned(&plan, true));
            let plan = ms.plan(CoreId(0), Addr(8), AccessKind::Write);
            black_box(ms.access_planned(&plan, true));
            black_box(ms.clear_spec(CoreId(0)))
        })
    });
    group.finish();
}

/// Conflict detection against live speculative state.
fn bench_conflicts(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflicts");
    group.bench_function("probe_no_conflict_32core", |b| {
        // 31 other cores, none speculative: the O(1) mask lookup.
        let mut ms: MemorySystem = MemorySystem::new(MemConfig::default(), 32);
        ms.access(CoreId(0), Addr(0), AccessKind::Read, false);
        b.iter(|| black_box(ms.has_conflicts(CoreId(0), Addr(0), AccessKind::Write)))
    });
    group.bench_function("conflict_set_one_writer", |b| {
        let mut ms: MemorySystem = MemorySystem::new(MemConfig::default(), 32);
        ms.access(CoreId(1), Addr(0), AccessKind::Write, true);
        b.iter(|| {
            let set = ms.conflict_set(CoreId(0), Addr(0), AccessKind::Read);
            black_box(set.len())
        })
    });
    group.bench_function("conflict_set_seven_readers", |b| {
        // Spills past the inline capacity: the rare wide-conflict shape.
        let mut ms: MemorySystem = MemorySystem::new(MemConfig::default(), 8);
        for i in 1..8 {
            ms.access(CoreId(i), Addr(0), AccessKind::Read, true);
        }
        b.iter(|| {
            let set = ms.conflict_set(CoreId(0), Addr(0), AccessKind::Write);
            black_box(set.len())
        })
    });
    group.finish();
}

/// The paged architectural memory.
fn bench_memory_words(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_memory");
    group.bench_function("read_warm_page", |b| {
        let mut ms: MemorySystem = MemorySystem::new(MemConfig::default(), 1);
        ms.write_word(Addr(100), 7);
        b.iter(|| black_box(ms.read_word(Addr(100))))
    });
    group.bench_function("write_warm_page", |b| {
        let mut ms: MemorySystem = MemorySystem::new(MemConfig::default(), 1);
        ms.write_word(Addr(100), 7);
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(1) | 1;
            ms.write_word(Addr(100), v);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hit_path, bench_conflicts, bench_memory_words);
criterion_main!(benches);
