//! Interleaved A/B probe for the stall-storm fast-forward speedup.
//!
//! Ignored by default: it is a measurement, not a pass/fail gate —
//! wall-clock on shared or single-vCPU hosts is too noisy to assert on
//! (cross-process A/B on this class of machine flips winners run to run).
//! The methodology that survives that noise, and the one EXPERIMENTS.md
//! quotes, is *in-process interleaving*: alternate fast-forward on/off in
//! one process, take the minimum of several rounds of each, and compare.
//!
//! ```text
//! cargo test --release -p retcon-workloads --test ff_speedup -- --ignored --nocapture
//! ```

use retcon_sim::SimConfig;
use retcon_workloads::{machine_for, System, Workload};
use std::time::Instant;

/// The heaviest contended shape in the suite (the `contended32` bench
/// entry): 32-core unoptimized `python` under RetCon, where stall retries
/// outnumber retired instructions ~2.6:1.
#[test]
#[ignore]
fn fast_forward_speedup_on_contended32() {
    let spec = Workload::Python { optimized: false }.build(32, 1);
    let mut on = u128::MAX;
    let mut off = u128::MAX;
    for _ in 0..5 {
        for ff in [true, false] {
            let mut machine = machine_for(
                &spec,
                System::Retcon.protocol(32),
                SimConfig::with_cores(32),
            );
            machine.set_fast_forward(ff);
            let t = Instant::now();
            let report = machine.run().expect("run completes");
            let dt = t.elapsed().as_micros();
            assert!(report.cycles > 0);
            if ff {
                on = on.min(dt);
            } else {
                off = off.min(dt);
            }
        }
    }
    eprintln!(
        "ff-on min {}us  ff-off min {}us  speedup {:.2}x",
        on,
        off,
        off as f64 / on as f64
    );
}
