//! Machine configuration: cache geometry and latency parameters (Table 1).

use crate::cache::CacheGeometry;

/// Access latencies in cycles, matching Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// L1 hit latency (1 cycle: the in-order cores issue 1 IPC).
    pub l1_hit: u64,
    /// Private-L2 hit latency ("10-cycle hit latency").
    pub l2_hit: u64,
    /// One interconnect hop to/from the directory ("20 cycle hop latency").
    pub hop: u64,
    /// DRAM lookup ("100 cycles DRAM lookup latency").
    pub dram: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            l1_hit: 1,
            l2_hit: 10,
            hop: 20,
            dram: 100,
        }
    }
}

impl LatencyModel {
    /// Latency of an L2 miss serviced by the directory: two hops (request to
    /// the directory, response back) plus either a forward from the remote
    /// owner's cache (one extra hop) or a DRAM lookup.
    #[inline]
    pub fn l2_miss(&self, forwarded_from_owner: bool) -> u64 {
        let transfer = if forwarded_from_owner {
            self.hop
        } else {
            self.dram
        };
        2 * self.hop + transfer
    }

    /// Latency of an upgrade (Shared → Modified without a data transfer): a
    /// directory round trip.
    #[inline]
    pub fn upgrade(&self) -> u64 {
        2 * self.hop
    }
}

/// Full memory-system configuration.
///
/// Defaults reproduce Table 1: 64 KB 4-way L1, 1 MB 4-way private L2, 64-byte
/// blocks, directory coherence with 20-cycle hops and 100-cycle DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 geometry (64 KB, 4-way, 64 B blocks → 256 sets).
    pub l1: CacheGeometry,
    /// Private L2 geometry (1 MB, 4-way, 64 B blocks → 4096 sets).
    pub l2: CacheGeometry,
    /// Latency parameters.
    pub latency: LatencyModel,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1: CacheGeometry::new(64 * 1024, 4),
            l2: CacheGeometry::new(1024 * 1024, 4),
            latency: LatencyModel::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let cfg = MemConfig::default();
        assert_eq!(cfg.l1.sets, 256);
        assert_eq!(cfg.l1.ways, 4);
        assert_eq!(cfg.l2.sets, 4096);
        assert_eq!(cfg.l2.ways, 4);
        assert_eq!(cfg.latency.l1_hit, 1);
        assert_eq!(cfg.latency.l2_hit, 10);
        assert_eq!(cfg.latency.hop, 20);
        assert_eq!(cfg.latency.dram, 100);
    }

    #[test]
    fn miss_latencies_compose_hops() {
        let lat = LatencyModel::default();
        assert_eq!(lat.l2_miss(false), 140); // 2 hops + DRAM
        assert_eq!(lat.l2_miss(true), 60); // 2 hops + owner forward
        assert_eq!(lat.upgrade(), 40);
    }
}
