//! Figure 4: runtime breakdown of the baseline system.
//!
//! Buckets per the paper: busy (useful work), conflict (stalled by another
//! processor or work in ultimately-aborted transactions), barrier (load
//! imbalance), other (commit processing).

use retcon_bench::{breakdown_row, print_header, run_at_scale};
use retcon_workloads::{System, Workload};

fn main() {
    print_header(
        "Figure 4: time breakdown on the eager baseline (fractions of total)",
        "",
    );
    println!(
        "{:<18} {:>8} {:>9} {:>9} {:>8}",
        "workload", "busy", "conflict", "barrier", "other"
    );
    for w in Workload::fig9() {
        let r = run_at_scale(w, System::Eager);
        let total = r.breakdown().total();
        let (busy, conflict, barrier, other) = breakdown_row(&r, total);
        println!(
            "{:<18} {:>8.3} {:>9.3} {:>9.3} {:>8.3}",
            w.label(),
            busy,
            conflict,
            barrier,
            other
        );
    }
    println!("\nExpected shape: -sz variants and python dominated by conflict;");
    println!("labyrinth by barrier (load imbalance); ssca2 mostly busy (memory-bound).");
}
