//! The pluggable scheduling seam.
//!
//! [`Machine::run`](crate::Machine::run) always advances the runnable core
//! with the smallest `(clock, id)` — one deterministic interleaving per
//! configuration. Every other interleaving the timing model permits was
//! previously unreachable, so the serializability and cross-protocol
//! oracles only ever witnessed that single schedule. This module extracts
//! the policy behind a [`Schedule`] trait so the same machine can be driven
//! by other policies:
//!
//! * [`DeterministicMinHeap`] — the default; byte-for-byte the historical
//!   behavior, including the stall-boundary batching contract.
//! * [`SeededFuzz`] — a splitmix-seeded perturber that reorders
//!   same-clock-eligible cores and injects bounded stall jitter; every run
//!   is exactly reproducible from `(config, seed)`.
//! * `retcon-explore`'s `TraceSchedule` — replays an explicit choice trace
//!   for the bounded DFS interleaving search.
//!
//! # Determinism contract
//!
//! A schedule decides *which* runnable core executes next and for how long
//! ([`Bound`]); it never touches simulation state. Given the same decision
//! sequence, the machine is a pure function of its inputs, so any
//! `Schedule` whose decisions are a deterministic function of its own state
//! and the observed yields keeps the whole run reproducible. The default
//! policy must uphold the invariant pinned by `tests/determinism.rs`:
//! scheduler order = min over runnable `(clock, id)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How far the selected core may run before control returns to the
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Batch: execute while the core's `(clock, id)` stays strictly below
    /// this key (the heap policy's stall-boundary batching; the key is the
    /// smallest `(clock, id)` among the other runnable cores).
    Until(u64, usize),
    /// Execute exactly one instruction attempt (a stalled retry counts),
    /// then yield. Exploration policies use this: every instruction
    /// boundary is a potential choice point.
    Step,
    /// No other core is runnable: execute until a barrier or halt.
    Free,
}

/// One scheduling decision: which core runs, and for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The core to execute.
    pub core: usize,
    /// How far it may run before yielding back to the schedule.
    pub bound: Bound,
    /// How far a *certified stall storm* may be charged before yielding —
    /// `bound` relaxed past other storming cores. Skipped storm retries of
    /// different cores commute (they only add to saturating predictor
    /// counters, stall counters and cache statistics, none of which a
    /// skipped retry reads), so a core fast-forwarding a certified storm
    /// may charge past the keys of other cores that are themselves inside
    /// certified storms — but never past a core that would execute a real
    /// instruction. Policies without a storm/active split (every policy
    /// except [`DeterministicMinHeap`]) set this equal to `bound`, which
    /// disables the relaxation.
    pub storm_bound: Bound,
}

impl Decision {
    /// A decision with no storm relaxation (`storm_bound == bound`).
    pub fn new(core: usize, bound: Bound) -> Decision {
        Decision {
            core,
            bound,
            storm_bound: bound,
        }
    }
}

/// The action a core will attempt on its next instruction, as visible to a
/// schedule *before* it decides. Exploration policies use this to prune:
/// two eligible cores whose next actions are [independent]
/// (`CoreAction::conflicts_with`) need not be explored in both orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreAction {
    /// A load of the given cache block.
    Read(u64),
    /// A store to the given cache block.
    Write(u64),
    /// A transaction commit (protocol-global effects: publication,
    /// validation, victim aborts).
    Commit,
    /// A transaction begin (acquires an age/timestamp).
    Begin,
    /// Anything purely core-local (ALU, branches, register moves, work).
    Local,
}

impl CoreAction {
    /// Whether executing `self` and `other` on *different* cores can be
    /// order-sensitive. Used only for search pruning, so the relation is
    /// deliberately conservative in one direction: it may report a
    /// conflict where none exists (wasted exploration), and treats
    /// protocol-global operations (`Commit`, `Begin`) as conflicting with
    /// every transactional action.
    pub fn conflicts_with(self, other: CoreAction) -> bool {
        use CoreAction::*;
        match (self, other) {
            (Local, _) | (_, Local) => false,
            (Read(a), Read(b)) => {
                // Two reads of one block can still race through protocol
                // metadata (DATM forwarding edges), but their *order* is
                // observationally symmetric; treat as independent.
                let _ = (a, b);
                false
            }
            (Read(a), Write(b)) | (Write(a), Read(b)) | (Write(a), Write(b)) => a == b,
            // Commits/begins order transactions globally.
            _ => true,
        }
    }
}

/// Read-only view of the machine a schedule may consult when deciding.
pub trait SchedulePeek {
    /// Number of cores in the machine.
    fn num_cores(&self) -> usize;
    /// The action `core` will attempt on its next instruction.
    fn next_action(&self, core: usize) -> CoreAction;
}

/// A scheduling policy for [`Machine::run_with`](crate::Machine::run_with).
///
/// Lifecycle: `begin` once with every core's starting clock, then
/// repeatedly `next_core` → (machine runs the decided core) →
/// `core_yielded`. Cores parked at a barrier leave the runnable set
/// (`runnable = false`) and re-enter through `core_released` when the
/// machine releases the barrier. `observe_stall` is consulted on every
/// stall charge and may add jitter cycles.
pub trait Schedule {
    /// Starts a run: `clocks[i]` is core `i`'s current clock; every core is
    /// runnable.
    fn begin(&mut self, clocks: &[u64]);

    /// Picks the next core to execute, or `None` when no core is runnable
    /// (everyone halted or parked at the barrier).
    fn next_core(&mut self, peek: &dyn SchedulePeek) -> Option<Decision>;

    /// The previously-decided core stopped at clock `now`; it re-enters the
    /// runnable set unless `runnable` is false (halted or at a barrier).
    /// `storming` reports whether the core yielded holding a certified
    /// stall-storm verdict (see [`Decision::storm_bound`]): its next
    /// attempts are provably stall retries until remote state moves, so a
    /// policy may class it apart from cores about to execute real
    /// instructions. The flag is advisory — treating every core as
    /// non-storming is always correct.
    fn core_yielded(&mut self, core: usize, now: u64, runnable: bool, storming: bool);

    /// `core` was released from a barrier at clock `now` and is runnable
    /// again.
    fn core_released(&mut self, core: usize, now: u64);

    /// A stall of the configured retry latency is being charged to `core`
    /// at clock `now`; the returned extra cycles are added to the charge
    /// (conflict time). The default policy never jitters.
    fn observe_stall(&mut self, _core: usize, _now: u64) -> u64 {
        0
    }

    /// `true` only if [`observe_stall`](Schedule::observe_stall) is
    /// stateless and always returns zero, so skipping its calls cannot be
    /// observed. The machine's stall fast-forward consults this: a
    /// jitter-free schedule gets the pure closed form (no `observe_stall`
    /// calls for the fast-forwarded retries), while any other schedule is
    /// still consulted exactly once per charged retry — jittered schedules
    /// like [`SeededFuzz`] draw from their RNG on every charge, and
    /// dropping or reordering draws would change the schedule. The
    /// conservative default keeps unknown schedules jitter-faithful.
    fn stall_jitter_free(&self) -> bool {
        false
    }
}

/// The default policy: always run the runnable core with the smallest
/// `(clock, id)`, batching until the next heap key. Byte-for-byte the
/// historical `Machine::run` scheduler.
///
/// Runnable cores live in two heaps by the `storming` yield flag: cores
/// about to execute real instructions in `ready`, cores inside certified
/// stall storms in `storming`. Selection order is unchanged (the global
/// minimum across both), so the split is invisible to execution order; its
/// sole effect is the relaxed [`Decision::storm_bound`], which stops at
/// the earliest *ready* key only. On heavily contended runs most runnable
/// cores are storming in lockstep, and without the split every storm
/// charge is clamped to a single retry by the next storming neighbour's
/// key — the relaxation lets one heap pop charge a storm clear across all
/// of them, collapsing the scheduler round-trips that dominate such runs.
#[derive(Debug, Default)]
pub struct DeterministicMinHeap {
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    storming: BinaryHeap<Reverse<(u64, usize)>>,
}

impl DeterministicMinHeap {
    /// An empty heap; `begin` fills it.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Schedule for DeterministicMinHeap {
    fn begin(&mut self, clocks: &[u64]) {
        self.ready.clear();
        self.storming.clear();
        self.ready
            .extend(clocks.iter().enumerate().map(|(i, &c)| Reverse((c, i))));
    }

    fn next_core(&mut self, _peek: &dyn SchedulePeek) -> Option<Decision> {
        let from_storm = match (self.ready.peek(), self.storming.peek()) {
            (Some(&Reverse(r)), Some(&Reverse(s))) => s < r,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => return None,
        };
        let Reverse((_, core)) = if from_storm {
            self.storming.pop()?
        } else {
            self.ready.pop()?
        };
        let ready_top = self.ready.peek().map(|&Reverse(k)| k);
        let storm_top = self.storming.peek().map(|&Reverse(k)| k);
        let until = |key: Option<(u64, usize)>| match key {
            Some((clock, id)) => Bound::Until(clock, id),
            None => Bound::Free,
        };
        let bound = until(match (ready_top, storm_top) {
            (Some(r), Some(s)) => Some(r.min(s)),
            (r, s) => r.or(s),
        });
        Some(Decision {
            core,
            bound,
            storm_bound: until(ready_top),
        })
    }

    fn core_yielded(&mut self, core: usize, now: u64, runnable: bool, storming: bool) {
        if runnable {
            if storming {
                self.storming.push(Reverse((now, core)));
            } else {
                self.ready.push(Reverse((now, core)));
            }
        }
    }

    fn core_released(&mut self, core: usize, now: u64) {
        self.ready.push(Reverse((now, core)));
    }

    fn stall_jitter_free(&self) -> bool {
        true
    }
}

/// SplitMix64 (same mixing function as the workload generators'), private
/// to the schedule so `retcon-sim` stays dependency-free of the workload
/// crate.
#[derive(Debug, Clone)]
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Accumulates a schedule's decision sequence into one 64-bit fingerprint
/// (FNV-1a over the event words). Two runs with the same fingerprint took
/// the same decisions with overwhelming probability, so distinct
/// fingerprints count distinct explored interleavings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHash(u64);

impl TraceHash {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// The hash of the empty decision sequence.
    pub fn empty() -> Self {
        TraceHash(Self::OFFSET)
    }

    /// Folds one event word into the fingerprint.
    pub fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The current fingerprint value.
    pub fn value(self) -> u64 {
        self.0
    }
}

/// A seeded schedule perturber: at every instruction boundary it picks
/// uniformly among the cores whose clock lies within `window` cycles of
/// the runnable minimum, and every stall charge gains `0..=max_jitter`
/// extra cycles. With `window = 0` it only reorders exact `(clock)` ties —
/// the schedules a real machine could exhibit under identical timing —
/// while jitter perturbs the clocks themselves, opening timing-shifted
/// interleavings. Fully reproducible from the seed.
#[derive(Debug, Clone)]
pub struct SeededFuzz {
    rng: Mix,
    /// Per-core clock for runnable cores; `None` = halted or parked.
    runnable: Vec<Option<u64>>,
    /// Scratch list of eligible core ids (reused; no steady-state
    /// allocation).
    eligible: Vec<usize>,
    window: u64,
    max_jitter: u64,
    hash: TraceHash,
    decisions: u64,
}

impl SeededFuzz {
    /// The default eligibility window (cycles above the runnable minimum a
    /// core may be chosen from).
    pub const DEFAULT_WINDOW: u64 = 2;
    /// The default maximum stall jitter in cycles.
    pub const DEFAULT_JITTER: u64 = 3;

    /// A fuzz schedule with the default window and jitter.
    pub fn new(seed: u64) -> Self {
        Self::with_params(seed, Self::DEFAULT_WINDOW, Self::DEFAULT_JITTER)
    }

    /// A fuzz schedule with explicit eligibility window and maximum stall
    /// jitter.
    pub fn with_params(seed: u64, window: u64, max_jitter: u64) -> Self {
        SeededFuzz {
            rng: Mix(seed),
            runnable: Vec::new(),
            eligible: Vec::new(),
            window,
            max_jitter,
            hash: TraceHash::empty(),
            decisions: 0,
        }
    }

    /// Fingerprint of every decision (chosen core + clock + jitter) taken
    /// so far; distinct fingerprints identify distinct schedules.
    pub fn trace_hash(&self) -> u64 {
        self.hash.value()
    }

    /// Number of scheduling decisions taken.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }
}

impl Schedule for SeededFuzz {
    fn begin(&mut self, clocks: &[u64]) {
        self.runnable.clear();
        self.runnable.extend(clocks.iter().map(|&c| Some(c)));
        self.hash = TraceHash::empty();
        self.decisions = 0;
    }

    fn next_core(&mut self, _peek: &dyn SchedulePeek) -> Option<Decision> {
        let min = self.runnable.iter().filter_map(|c| *c).min()?;
        self.eligible.clear();
        for (i, clock) in self.runnable.iter().enumerate() {
            if let Some(c) = *clock {
                if c <= min.saturating_add(self.window) {
                    self.eligible.push(i);
                }
            }
        }
        let pick = self.rng.below(self.eligible.len() as u64) as usize;
        let core = self.eligible[pick];
        self.runnable[core] = None; // running; re-enters via core_yielded
        self.hash.push((core as u64) << 32 | pick as u64);
        self.decisions += 1;
        Some(Decision::new(core, Bound::Step))
    }

    fn core_yielded(&mut self, core: usize, now: u64, runnable: bool, _storming: bool) {
        self.runnable[core] = runnable.then_some(now);
    }

    fn core_released(&mut self, core: usize, now: u64) {
        self.runnable[core] = Some(now);
    }

    fn observe_stall(&mut self, _core: usize, _now: u64) -> u64 {
        if self.max_jitter == 0 {
            return 0;
        }
        let jitter = self.rng.below(self.max_jitter + 1);
        self.hash.push(0x8000_0000_0000_0000 | jitter);
        jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoPeek;
    impl SchedulePeek for NoPeek {
        fn num_cores(&self) -> usize {
            0
        }
        fn next_action(&self, _core: usize) -> CoreAction {
            CoreAction::Local
        }
    }

    #[test]
    fn heap_orders_by_clock_then_id() {
        let mut s = DeterministicMinHeap::new();
        s.begin(&[5, 0, 5]);
        let d = s.next_core(&NoPeek).unwrap();
        assert_eq!(d.core, 1);
        assert_eq!(d.bound, Bound::Until(5, 0));
        s.core_yielded(1, 9, true, false);
        let d = s.next_core(&NoPeek).unwrap();
        assert_eq!(d.core, 0, "tie broken by id");
        assert_eq!(d.bound, Bound::Until(5, 2));
    }

    #[test]
    fn heap_frees_last_core_and_drops_unrunnable() {
        let mut s = DeterministicMinHeap::new();
        s.begin(&[0, 3]);
        let d = s.next_core(&NoPeek).unwrap();
        assert_eq!(d.core, 0);
        s.core_yielded(0, 10, false, false); // halted
        let d = s.next_core(&NoPeek).unwrap();
        assert_eq!((d.core, d.bound), (1, Bound::Free));
        s.core_yielded(1, 11, false, false);
        assert!(s.next_core(&NoPeek).is_none());
    }

    #[test]
    fn fuzz_is_reproducible_and_window_bounded() {
        let drive = |seed| {
            let mut s = SeededFuzz::with_params(seed, 0, 0);
            s.begin(&[0, 0, 7]);
            let mut picks = Vec::new();
            for _ in 0..2 {
                let d = s.next_core(&NoPeek).unwrap();
                assert!(d.core < 2, "core 2 is outside the window");
                assert_eq!(d.bound, Bound::Step);
                picks.push(d.core);
                s.core_yielded(d.core, 9, true, false);
            }
            (picks, s.trace_hash())
        };
        assert_eq!(drive(42), drive(42));
        // Some seed must pick core 1 first (ties are actually reordered).
        assert!((0..32u64).any(|seed| drive(seed).0[0] == 1));
    }

    #[test]
    fn fuzz_jitter_is_bounded() {
        let mut s = SeededFuzz::with_params(1, 2, 5);
        s.begin(&[0]);
        for _ in 0..100 {
            assert!(s.observe_stall(0, 0) <= 5);
        }
        let mut none = SeededFuzz::with_params(1, 2, 0);
        none.begin(&[0]);
        assert_eq!(none.observe_stall(0, 0), 0);
    }

    #[test]
    fn conflict_relation_is_symmetric_and_local_free() {
        use CoreAction::*;
        let actions = [Read(1), Write(1), Read(2), Write(2), Commit, Begin, Local];
        for a in actions {
            for b in actions {
                assert_eq!(a.conflicts_with(b), b.conflicts_with(a), "{a:?} {b:?}");
                assert!(!Local.conflicts_with(b));
            }
        }
        assert!(Write(1).conflicts_with(Read(1)));
        assert!(!Write(1).conflicts_with(Read(2)));
        assert!(!Read(1).conflicts_with(Read(1)));
        assert!(Commit.conflicts_with(Begin));
    }
}
