//! Lazy conflict detection with committer-wins resolution (Figure 2(e)).

use retcon_isa::{Addr, Reg};
use retcon_mem::{AccessKind, CoreId, MemorySystem, WriteBuffer};

use crate::protocol::Protocol;
use crate::result::{AbortCause, CommitResult, MemResult, ProtocolStats, RegUpdates};

#[derive(Debug, Default)]
struct CoreState {
    active: bool,
    birth: Option<u64>,
    wb: WriteBuffer,
    aborted: bool,
    stats: ProtocolStats,
}

/// A lazy (commit-time conflict detection) HTM: speculative stores are
/// buffered locally and published at commit, which invalidates — and aborts —
/// every transaction that speculatively read the written blocks
/// ("committer wins"). Reads set speculative-read bits so the committer can
/// find its victims; writes touch no coherence state until commit.
///
/// This reproduces the LazyTM behaviour of Figure 2(e): a transaction may
/// run to its own commit point, but loses to any earlier committer it raced
/// with.
#[derive(Debug)]
pub struct LazyTm<const N: usize = 1> {
    _class: core::marker::PhantomData<[u64; N]>,
    cores: Vec<CoreState>,
}

impl<const N: usize> LazyTm<N> {
    /// Creates the protocol for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        LazyTm {
            _class: core::marker::PhantomData,
            cores: (0..num_cores).map(|_| CoreState::default()).collect(),
        }
    }

    fn abort_victim(&mut self, victim: CoreId, mem: &mut MemorySystem<N>) {
        let cs = &mut self.cores[victim.0];
        debug_assert!(cs.active, "victim must be active");
        cs.wb.discard();
        mem.clear_spec(victim);
        cs.active = false;
        cs.aborted = true;
        cs.stats.record_abort(AbortCause::Conflict);
    }
}

impl<const N: usize> Protocol<N> for LazyTm<N> {
    fn name(&self) -> &'static str {
        "lazy"
    }

    fn tx_begin(&mut self, core: CoreId, now: u64) {
        let cs = &mut self.cores[core.0];
        debug_assert!(!cs.active);
        cs.active = true;
        cs.birth.get_or_insert(now);
    }

    fn tx_active(&self, core: CoreId) -> bool {
        self.cores[core.0].active
    }

    fn read(
        &mut self,
        core: CoreId,
        _dst: Reg,
        addr: Addr,
        _addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        _now: u64,
    ) -> MemResult {
        let active = self.cores[core.0].active;
        if active {
            if let Some(v) = self.cores[core.0].wb.read(addr) {
                return MemResult::Value {
                    value: v,
                    latency: 1,
                };
            }
        }
        // No write ever sets speculative-written bits under this protocol,
        // so reads cannot conflict.
        debug_assert!(!mem.has_conflicts(core, addr, AccessKind::Read));
        let latency = mem.access(core, addr, AccessKind::Read, active);
        MemResult::Value {
            value: mem.read_word(addr),
            latency,
        }
    }

    fn write(
        &mut self,
        core: CoreId,
        _src: Option<Reg>,
        value: u64,
        addr: Addr,
        _addr_reg: Option<Reg>,
        mem: &mut MemorySystem<N>,
        _now: u64,
    ) -> MemResult {
        if self.cores[core.0].active {
            // Lazy version management: buffer locally, no coherence action.
            self.cores[core.0].wb.write(addr, value);
            return MemResult::Value { value, latency: 1 };
        }
        // Non-transactional write: abort any speculative readers
        // (ascending set iteration = ascending core order).
        let conflicts = mem.conflict_mask_of(core, addr, AccessKind::Write);
        for victim in conflicts {
            self.abort_victim(CoreId(victim), mem);
        }
        let latency = mem.access(core, addr, AccessKind::Write, false);
        mem.write_word(addr, value);
        MemResult::Value { value, latency }
    }

    fn commit(&mut self, core: CoreId, mem: &mut MemorySystem<N>, _now: u64) -> CommitResult {
        debug_assert!(self.cores[core.0].active);
        // Take the buffer so its entries can be drained while `self` aborts
        // victims; hand the allocation back afterwards (steady-state commits
        // allocate nothing).
        let wb = std::mem::take(&mut self.cores[core.0].wb);
        let mut latency = 0;
        for (addr, value) in wb.iter() {
            // Committer wins: every transaction that speculatively read the
            // block aborts.
            let conflicts = mem.conflict_mask_of(core, addr, AccessKind::Write);
            for victim in conflicts {
                self.abort_victim(CoreId(victim), mem);
            }
            latency += mem.access(core, addr, AccessKind::Write, false);
            mem.write_word(addr, value);
        }
        let cs = &mut self.cores[core.0];
        cs.wb = wb;
        cs.wb.discard();
        cs.active = false;
        cs.birth = None;
        cs.stats.commits += 1;
        mem.clear_spec(core);
        CommitResult::Committed {
            latency,
            reg_updates: RegUpdates::EMPTY,
        }
    }

    fn take_aborted(&mut self, core: CoreId) -> bool {
        std::mem::take(&mut self.cores[core.0].aborted)
    }

    fn abort_pending(&self, core: CoreId) -> bool {
        self.cores[core.0].aborted
    }

    fn stats(&self, core: CoreId) -> &ProtocolStats {
        &self.cores[core.0].stats
    }

    fn check_quiescent(&self) -> Result<(), String> {
        for (i, cs) in self.cores.iter().enumerate() {
            if cs.active {
                return Err(format!("lazy: core {i} still has an active transaction"));
            }
            if cs.birth.is_some() {
                return Err(format!("lazy: core {i} kept a transaction birth stamp"));
            }
            if !cs.wb.is_empty() {
                return Err(format!(
                    "lazy: core {i} write buffer holds {} entries at quiescence",
                    cs.wb.len()
                ));
            }
            if cs.aborted {
                return Err(format!("lazy: core {i} has an undelivered abort flag"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retcon_mem::MemConfig;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const A: Addr = Addr(0);

    fn setup() -> (MemorySystem, LazyTm) {
        (MemorySystem::new(MemConfig::default(), 2), LazyTm::new(2))
    }

    fn value(r: MemResult) -> u64 {
        match r {
            MemResult::Value { value, .. } => value,
            other => panic!("expected value, got {other:?}"),
        }
    }

    #[test]
    fn writes_invisible_until_commit() {
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        tm.write(C0, None, 5, A, None, &mut mem, 1);
        assert_eq!(mem.read_word(A), 0);
        // Own reads forward from the write buffer.
        assert_eq!(value(tm.read(C0, Reg(0), A, None, &mut mem, 2)), 5);
        // Remote reads see the old value and do not conflict in flight.
        assert_eq!(value(tm.read(C1, Reg(0), A, None, &mut mem, 3)), 0);
        tm.commit(C0, &mut mem, 4);
        assert_eq!(mem.read_word(A), 5);
    }

    #[test]
    fn committer_aborts_speculative_readers() {
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        tm.tx_begin(C1, 1);
        // C1 reads A speculatively; C0 writes A and commits first.
        let _ = tm.read(C1, Reg(0), A, None, &mut mem, 2);
        tm.write(C0, None, 5, A, None, &mut mem, 3);
        let r = tm.commit(C0, &mut mem, 4);
        assert!(matches!(r, CommitResult::Committed { .. }));
        assert!(tm.take_aborted(C1));
        assert_eq!(tm.stats(C1).aborts(), 1);
        assert!(!tm.tx_active(C1));
    }

    #[test]
    fn disjoint_txs_both_commit() {
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C0, 0);
        tm.tx_begin(C1, 1);
        tm.write(C0, None, 5, Addr(0), None, &mut mem, 2);
        tm.write(C1, None, 7, Addr(64), None, &mut mem, 3);
        assert!(matches!(
            tm.commit(C0, &mut mem, 4),
            CommitResult::Committed { .. }
        ));
        assert!(matches!(
            tm.commit(C1, &mut mem, 5),
            CommitResult::Committed { .. }
        ));
        assert_eq!(mem.read_word(Addr(0)), 5);
        assert_eq!(mem.read_word(Addr(64)), 7);
        assert!(!tm.take_aborted(C0) && !tm.take_aborted(C1));
    }

    #[test]
    fn aborted_tx_buffer_discarded() {
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C1, 0);
        tm.write(C1, None, 9, A, None, &mut mem, 1);
        let _ = tm.read(C1, Reg(0), Addr(64), None, &mut mem, 2);
        // C0 commits a write to the block C1 read: C1 aborts; its buffered
        // store to A must never surface.
        tm.tx_begin(C0, 3);
        tm.write(C0, None, 1, Addr(64), None, &mut mem, 4);
        tm.commit(C0, &mut mem, 5);
        assert!(tm.take_aborted(C1));
        assert_eq!(mem.read_word(A), 0);
    }

    #[test]
    fn non_tx_write_aborts_readers() {
        let (mut mem, mut tm) = setup();
        tm.tx_begin(C1, 0);
        let _ = tm.read(C1, Reg(0), A, None, &mut mem, 1);
        let _ = tm.write(C0, None, 3, A, None, &mut mem, 2);
        assert!(tm.take_aborted(C1));
        assert_eq!(mem.read_word(A), 3);
    }
}
