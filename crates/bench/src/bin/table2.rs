//! Table 2: the workload inventory, with the model parameters actually used.
//!
//! Like every figure/table bin, this is a thin wrapper over the
//! `retcon-lab` dataset of the same name: it regenerates the record
//! (job-parallel with `--jobs N`) and renders the historical stdout
//! table, or emits the machine-readable record with `--json` / `--csv`
//! (`--out DIR` writes both files).

use std::process::ExitCode;

fn main() -> ExitCode {
    retcon_lab::cli::bin_main(retcon_lab::Dataset::Table2)
}
