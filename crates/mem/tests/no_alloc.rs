//! The ISSUE-3 zero-allocation guarantee, enforced: once caches, maps and
//! speculative structures are warm, the steady-state access loop — probe,
//! conflict check, coherence transition, speculative mark, commit-time
//! clear — performs no heap allocation at all.
//!
//! The test binary swaps in a counting global allocator and asserts that
//! the heap-event counter (allocs + reallocs + frees) does not move across
//! tens of thousands of hot-path iterations.
//!
//! The workspace-level `tests/no_alloc_machine.rs` extends this proof from
//! the bare memory system to whole `Machine::run` executions under every
//! protocol.

use retcon_isa::Addr;
use retcon_mem::{AccessKind, CoreId, MemConfig, MemorySystem};

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

const C0: CoreId = CoreId(0);
const C1: CoreId = CoreId(1);

/// Asserts that at least one of `attempts` runs of `hot_loop` completes
/// with zero heap events.
///
/// The counters are process-global, so the test-harness thread can land a
/// stray allocation inside a measurement window (observed: ~2 events every
/// few runs on the single-CPU container). The hot loop itself is
/// deterministic — if *it* allocated, every attempt would observe events —
/// so demanding one clean window keeps the guarantee sharp while shrugging
/// off harness noise.
fn assert_some_window_is_allocation_free(mut hot_loop: impl FnMut(), what: &str) {
    const ATTEMPTS: usize = 5;
    let mut observed = Vec::new();
    for _ in 0..ATTEMPTS {
        let before = alloc_counter::heap_events();
        hot_loop();
        let events = alloc_counter::heap_events() - before;
        if events == 0 {
            return;
        }
        observed.push(events);
    }
    panic!("{what}: every one of {ATTEMPTS} windows saw heap events: {observed:?}");
}

/// One transaction's worth of warm traffic: speculative reads and writes
/// over a small block set, conflict probes from a remote core, then the
/// commit-time clear.
fn hot_iteration(ms: &mut MemorySystem) {
    for i in 0..4u64 {
        let addr = Addr(i * 8);
        let plan = ms.plan(C0, addr, AccessKind::Read);
        assert!(!plan.has_conflicts());
        ms.access_planned(&plan, true);
    }
    for i in 0..4u64 {
        let addr = Addr(i * 8);
        let plan = ms.plan(C0, addr, AccessKind::Write);
        assert!(!plan.has_conflicts());
        ms.access_planned(&plan, true);
        ms.write_word(addr, i + 1);
    }
    // Remote probes against live speculative state (conflicting and not):
    // the conflict set stays inline, allocation-free.
    for i in 0..4u64 {
        let addr = Addr(i * 8);
        assert!(ms.has_conflicts(C1, addr, AccessKind::Read));
        let set = ms.conflict_set(C1, addr, AccessKind::Read);
        assert_eq!(set.len(), 1);
    }
    assert!(!ms.has_conflicts(C1, Addr(64), AccessKind::Write));
    // Commit: clear all speculative bits.
    assert_eq!(ms.clear_spec(C0), 4);
}

/// One test function (not two): with process-global counters, a second
/// `#[test]` on a parallel harness thread would land its setup allocations
/// inside this one's measurement windows.
#[test]
fn warm_hot_paths_do_not_allocate() {
    // --- Speculative transaction loop ---
    let mut ms: MemorySystem = MemorySystem::new(MemConfig::default(), 4);
    // Warm-up: fault in pages, grow the spec/mask/directory tables, and let
    // every structure reach its steady-state capacity.
    for _ in 0..16 {
        hot_iteration(&mut ms);
    }
    assert_some_window_is_allocation_free(
        || {
            for _ in 0..10_000 {
                hot_iteration(&mut ms);
            }
        },
        "speculative transaction loop",
    );

    // --- Pure cache-hit loop of a non-speculative workload phase ---
    let mut ms: MemorySystem = MemorySystem::new(MemConfig::default(), 2);
    for i in 0..8u64 {
        ms.access(C0, Addr(i), AccessKind::Read, false);
        ms.write_word(Addr(i), i);
    }
    assert_some_window_is_allocation_free(
        || {
            for round in 0..10_000u64 {
                let addr = Addr(round % 8);
                let plan = ms.plan(C0, addr, AccessKind::Read);
                ms.access_planned(&plan, false);
                let _ = ms.read_word(addr);
                let plan = ms.plan(C0, addr, AccessKind::Write);
                ms.access_planned(&plan, false);
                ms.write_word(addr, round | 1);
            }
        },
        "uncontended cache-hit loop",
    );
}
