//! The ssca2 model: graph kernels with scattered tiny transactions.
//!
//! STAMP's ssca2 performs very small transactions that update graph
//! adjacency structures at effectively random addresses. The paper singles
//! it out as limited by *"bad caching behavior"* (§3), not conflicts: the
//! whole graph fits one core's L2 when run sequentially, but 32 cores
//! writing random words force constant coherence traffic. The model
//! reproduces exactly that: random read-modify-writes over a large shared
//! array, transactions of a few instructions, negligible semantic
//! conflicts.

use retcon_isa::{BinOp, CmpOp, Operand, ProgramBuilder, Reg};

use crate::rng::SplitMix64;
use crate::spec::{Alloc, WorkloadSpec};

/// Total edge-insertions across all cores.
const TOTAL_OPS: u64 = 16384;
/// Graph array words (512 KB — fits a 1 MB private L2 with room to spare).
const GRAPH_WORDS: u64 = 64 * 1024;
/// Tiny per-op work.
const WORK: u32 = 5;

/// Builds the ssca2 model.
pub fn build(num_cores: usize, seed: u64) -> WorkloadSpec {
    let mut alloc = Alloc::new();
    let graph = alloc.alloc_words(GRAPH_WORDS);
    let iters = (TOTAL_OPS / num_cores as u64).max(1);
    let mut rng = SplitMix64::new(seed ^ 0x7373_6361); // "ssca"

    let mut programs = Vec::with_capacity(num_cores);
    let mut tapes = Vec::with_capacity(num_cores);
    for core in 0..num_cores {
        let mut core_rng = rng.fork(core as u64);
        // Two random word indices per op (an "edge").
        let mut tape = Vec::with_capacity(2 * iters as usize);
        for _ in 0..iters {
            tape.push(core_rng.below(GRAPH_WORDS));
            tape.push(core_rng.below(GRAPH_WORDS));
        }
        tapes.push(tape);

        let mut b = ProgramBuilder::new();
        let body = b.block();
        let done = b.block();
        let r_iter = Reg(0);
        let r_u = Reg(10);
        let r_v = Reg(11);
        let r_val = Reg(4);

        b.imm(r_iter, iters);
        b.jump(body);

        b.select(body);
        b.input(r_u);
        b.input(r_v);
        b.tx_begin();
        b.work(WORK);
        // Touch both endpoints: increment their adjacency counts.
        for r in [r_u, r_v] {
            b.bin(BinOp::Add, r, r, Operand::Imm(graph.0 as i64));
            b.load(r_val, r, 0);
            b.bin(BinOp::Add, r_val, r_val, Operand::Imm(1));
            b.store(Operand::Reg(r_val), r, 0);
        }
        b.tx_commit();
        b.bin(BinOp::Sub, r_iter, r_iter, Operand::Imm(1));
        b.branch(CmpOp::Gt, r_iter, Operand::Imm(0), body, done);

        b.select(done);
        b.barrier();
        b.halt();
        programs.push(b.build().expect("ssca2 program is well-formed"));
    }

    WorkloadSpec {
        name: "ssca2",
        programs,
        tapes,
        init: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_spec, System};

    #[test]
    fn programs_validate() {
        let spec = build(4, 5);
        for p in &spec.programs {
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn degree_sum_is_preserved() {
        let spec = build(4, 5);
        let cfg = retcon_sim::SimConfig::with_cores(4);
        let mut machine =
            retcon_sim::Machine::new(cfg, System::Eager.protocol(4), spec.programs.clone());
        for (i, tape) in spec.tapes.iter().enumerate() {
            machine.set_tape(i, tape.clone());
        }
        machine.run().expect("runs");
        let total: u64 = machine.mem().memory().iter().map(|(_, v)| v).sum();
        assert_eq!(total, 2 * TOTAL_OPS);
    }

    #[test]
    fn conflicts_are_rare() {
        let report = run_spec(&build(8, 5), System::Eager, 8).unwrap();
        assert!(
            report.abort_ratio() < 0.05,
            "ssca2 should be nearly conflict-free: {}",
            report.abort_ratio()
        );
    }
}
