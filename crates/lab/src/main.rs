//! The `retcon-lab` experiment orchestrator.
//!
//! ```text
//! cargo run --release -p retcon-lab -- all --jobs 8 --out results/
//! cargo run --release -p retcon-lab -- run fig9 --jobs 8 --json
//! cargo run --release -p retcon-lab -- check --quick
//! cargo run --release -p retcon-lab -- list
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    retcon_lab::cli::lab_main()
}
