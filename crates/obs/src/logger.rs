//! A minimal leveled stderr logger: `error!`/`warn!`/`info!`/`debug!`
//! macros, a process-global level, and hand-rolled UTC timestamps (no
//! clock/formatting dependencies).
//!
//! Output format, one line per message:
//!
//! ```text
//! 2026-08-07T12:34:56Z INFO retcon-serve listening on 127.0.0.1:4100
//! ```

use std::sync::atomic::{AtomicU8, Ordering};

/// Message severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The process is in trouble.
    Error = 0,
    /// Something unexpected, handled.
    Warn = 1,
    /// Normal operational milestones.
    Info = 2,
    /// Chatty diagnostics.
    Debug = 3,
}

impl Level {
    /// Fixed-width display tag.
    pub fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    /// Parses a level name (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process-global log level (messages above it are dropped).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether a message at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Formats `secs` since the Unix epoch as `YYYY-MM-DDTHH:MM:SSZ`.
///
/// The civil-date conversion is the standard days-to-Gregorian
/// algorithm (Howard Hinnant's `civil_from_days`), valid far beyond any
/// wall clock this process will see.
pub fn format_utc(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mon = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if mon <= 2 { y + 1 } else { y };
    format!("{year:04}-{mon:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// Emits one formatted line to stderr if `level` is enabled. Called by
/// the macros; call directly only when the level is dynamic.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    eprintln!("{} {} {args}", format_utc(secs), level.tag());
}

/// Logs at [`Level::Error`] with `format!` syntax.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::logger::log($crate::logger::Level::Error, format_args!($($arg)*)) };
}

/// Logs at [`Level::Warn`] with `format!` syntax.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::logger::log($crate::logger::Level::Warn, format_args!($($arg)*)) };
}

/// Logs at [`Level::Info`] with `format!` syntax.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::logger::log($crate::logger::Level::Info, format_args!($($arg)*)) };
}

/// Logs at [`Level::Debug`] with `format!` syntax.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::logger::log($crate::logger::Level::Debug, format_args!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utc_formatting_matches_known_instants() {
        assert_eq!(format_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(format_utc(951_782_400), "2000-02-29T00:00:00Z"); // leap day
        assert_eq!(format_utc(1_754_524_800), "2025-08-07T00:00:00Z");
        assert_eq!(format_utc(4_102_444_799), "2099-12-31T23:59:59Z");
    }

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn level_gating() {
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Info); // restore the default for other tests
    }
}
