//! Hardware-TM concurrency-control protocols for the RETCON simulator.
//!
//! The paper's evaluation (§5) compares three hardware configurations —
//! **eager** (the §2 baseline HTM), **lazy-vb** (RETCON hardware limited to
//! value-based commit validation) and **RETCON** (full symbolic repair) —
//! and its Figure 2 additionally illustrates **Eager-Stall**, **LazyTM**
//! and **DATM** on a two-increment counter schedule. This crate implements
//! all of them behind one [`Protocol`] trait that the simulator drives:
//!
//! * [`EagerTm`] — eager conflict detection through speculative cache bits,
//!   eager version management with an undo log, and either the baseline
//!   timestamp-based "oldest transaction wins" contention policy
//!   ([`ConflictPolicy::OldestWins`], which stalls younger requesters —
//!   Figure 2(d)) or the abort-the-requester policy of Figure 2(c)
//!   ([`ConflictPolicy::RequesterLoses`]);
//! * [`LazyTm`] — write buffering with commit-time invalidation of
//!   conflicting readers (Figure 2(e));
//! * [`LazyVbTm`] — the paper's `lazy-vb`: every read is value-logged and
//!   revalidated byte-for-byte at commit; commits with changed values abort
//!   (§5.1);
//! * [`RetconTm`] — the full mechanism: the `retcon` crate's engine wired
//!   into the coherence substrate, with block stealing, constraint
//!   validation, and the Figure 7 pre-commit repair;
//! * [`DatmLite`] — a dependence-aware TM sufficient to reproduce
//!   Figure 2(b): speculative values forward between transactions, commit
//!   order follows the dependence order, and cyclic dependences abort.
//!
//! All protocols share the [`MemResult`]/[`CommitResult`] interface: an
//! access either completes with a value and a latency, stalls (the simulator
//! retries it), or aborts the local transaction (the simulator rolls the
//! core back to its transaction begin).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod any;
mod cm;
mod datm;
mod eager;
mod lazy;
mod lazy_vb;
mod protocol;
mod result;
mod retcon_tm;
mod storm;

pub use any::AnyProtocol;
pub use cm::{ConflictPolicy, Decision};
pub use datm::DatmLite;
pub use eager::EagerTm;
pub use lazy::LazyTm;
pub use lazy_vb::LazyVbTm;
pub use protocol::Protocol;
pub use result::{AbortCause, CommitResult, MemResult, ProtocolStats, RegUpdates};
pub use retcon_tm::RetconTm;
pub use storm::{StallAction, StallStorm};
