//! Deterministic, dependency-free fast hashing for block/word-keyed tables.
//!
//! The simulator's hot path is dominated by small hash tables keyed by
//! 64-bit block and word numbers (directory entries, speculative-permission
//! maps, the paged memory index). `std`'s default SipHash is keyed per
//! process and costs tens of cycles per lookup; this module provides the
//! classic Fx multiply-rotate hash used by rustc — a fixed, seedless
//! function, so hashing is both several times cheaper and identical across
//! runs (another determinism guard on top of the fact that no record-visible
//! output ever iterates a hash map).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Seedless `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hasher: rotate, xor, multiply per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let h = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 3);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
    }

    #[test]
    fn byte_writes_match_word_writes_for_u64_keys() {
        // Not required for correctness, but documents that the chunked
        // fallback is sane.
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
