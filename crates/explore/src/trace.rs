//! Choice traces and the trace-guided schedule.
//!
//! The bounded search drives the machine with a [`TraceSchedule`]: a
//! prescribed prefix of choices (indices into the eligible-core list at
//! each *choice point* — a scheduling decision with more than one eligible
//! core), beyond which every choice defaults to `0`, the deterministic
//! `(clock, id)` minimum. An empty prefix therefore reproduces the default
//! scheduler's interleaving exactly, and any failing schedule is fully
//! described — and replayable — by its choice list alone.

use retcon_sim::schedule::{Bound, Decision, Schedule, SchedulePeek, TraceHash};

/// A replayable schedule: the choice index taken at each choice point.
///
/// Serialized as a dot-separated index list (`"0.2.1"`; `""` is the empty
/// trace / default schedule), the format the `explore` record metadata and
/// DESIGN.md document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChoiceTrace {
    /// The choice taken at each choice point, in encounter order.
    pub choices: Vec<u32>,
}

impl ChoiceTrace {
    /// The empty trace: every choice defaults to the deterministic
    /// minimum, reproducing the default scheduler.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses the dot-separated form produced by [`Display`](std::fmt::Display).
    ///
    /// # Errors
    ///
    /// Reports the first non-numeric segment.
    pub fn parse(text: &str) -> Result<ChoiceTrace, String> {
        if text.is_empty() {
            return Ok(ChoiceTrace::empty());
        }
        let choices = text
            .split('.')
            .map(|s| {
                s.parse::<u32>()
                    .map_err(|_| format!("bad trace segment `{s}`"))
            })
            .collect::<Result<Vec<u32>, String>>()?;
        Ok(ChoiceTrace { choices })
    }
}

impl std::fmt::Display for ChoiceTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// What the schedule observed at one choice point (recorded during a run,
/// consumed by the search when deciding where to branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoicePoint {
    /// The choice index actually taken.
    pub taken: u32,
    /// Number of eligible cores (always >= 2; single-candidate decisions
    /// are not choice points).
    pub eligible: u32,
    /// Bitmask over eligible indices whose next action *conflicts* with
    /// another eligible core's next action — the only alternatives worth
    /// branching on (DPOR-lite pruning: reordering cores whose immediate
    /// next actions are pairwise independent commutes, so only the
    /// default order is explored through such points).
    pub branchable: u64,
}

/// A [`Schedule`] that replays a [`ChoiceTrace`] prefix and defaults to
/// the deterministic minimum beyond it, recording every choice point it
/// passes.
#[derive(Debug)]
pub struct TraceSchedule {
    prefix: Vec<u32>,
    /// Per-core clock for runnable cores; `None` = running/halted/parked.
    runnable: Vec<Option<u64>>,
    /// Scratch: eligible core ids at the current decision, sorted by
    /// `(clock, id)` so index 0 is always the deterministic default.
    eligible: Vec<usize>,
    /// The log of choice points passed, in encounter order.
    log: Vec<ChoicePoint>,
    window: u64,
    hash: TraceHash,
    decisions: u64,
    /// Set when a prescribed choice did not fit the run (index out of
    /// range at its choice point): the replay is NOT the schedule the
    /// trace describes.
    diverged: bool,
}

impl TraceSchedule {
    /// A schedule replaying `trace` with eligibility window `window`
    /// (cycles above the runnable minimum a core may be chosen from; `0`
    /// explores only exact clock ties).
    pub fn new(trace: &ChoiceTrace, window: u64) -> Self {
        TraceSchedule {
            prefix: trace.choices.clone(),
            runnable: Vec::new(),
            eligible: Vec::new(),
            log: Vec::new(),
            window,
            hash: TraceHash::empty(),
            decisions: 0,
            diverged: false,
        }
    }

    /// The choice points passed during the run, in encounter order.
    pub fn log(&self) -> &[ChoicePoint] {
        &self.log
    }

    /// The complete trace of the run just executed (taken choices at every
    /// choice point — a superset of the prescribed prefix, and exactly the
    /// prefix needed to replay this run).
    pub fn full_trace(&self) -> ChoiceTrace {
        ChoiceTrace {
            choices: self.log.iter().map(|p| p.taken).collect(),
        }
    }

    /// Fingerprint of every decision taken; distinct fingerprints identify
    /// distinct explored interleavings.
    pub fn trace_hash(&self) -> u64 {
        self.hash.value()
    }

    /// Number of scheduling decisions taken (choice points and forced
    /// single-candidate decisions alike).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// `true` when a prescribed choice index was out of range at its
    /// choice point (or the prescribed prefix outlived the run's choice
    /// points): the executed schedule is NOT the one the trace describes.
    /// Traces produced by the search always fit; a diverged replay means
    /// the trace was corrupted or paired with the wrong scenario.
    pub fn diverged(&self) -> bool {
        self.diverged || self.log.len() < self.prefix.len()
    }
}

impl Schedule for TraceSchedule {
    fn begin(&mut self, clocks: &[u64]) {
        self.runnable.clear();
        self.runnable.extend(clocks.iter().map(|&c| Some(c)));
        self.log.clear();
        self.hash = TraceHash::empty();
        self.decisions = 0;
        self.diverged = false;
    }

    fn next_core(&mut self, peek: &dyn SchedulePeek) -> Option<Decision> {
        let min = self.runnable.iter().filter_map(|c| *c).min()?;
        self.eligible.clear();
        for (i, clock) in self.runnable.iter().enumerate() {
            if let Some(c) = *clock {
                if c <= min.saturating_add(self.window) {
                    self.eligible.push(i);
                }
            }
        }
        // Index 0 must be the deterministic `(clock, id)` minimum so the
        // all-zero trace reproduces the default scheduler.
        self.eligible
            .sort_unstable_by_key(|&i| (self.runnable[i].expect("eligible core is runnable"), i));
        let taken = if self.eligible.len() > 1 {
            let point = self.log.len();
            let taken = match self.prefix.get(point) {
                Some(&c) if (c as usize) < self.eligible.len() => c,
                Some(_) => {
                    // Out-of-range prescription: fall back to the
                    // deterministic default, but *flag* the divergence —
                    // silently running a different schedule would make a
                    // corrupted trace look irreproducible.
                    self.diverged = true;
                    0
                }
                None => 0,
            };
            let mut branchable = 0u64;
            for (j, &cj) in self.eligible.iter().enumerate() {
                let aj = peek.next_action(cj);
                let conflicts = self
                    .eligible
                    .iter()
                    .enumerate()
                    .any(|(k, &ck)| k != j && aj.conflicts_with(peek.next_action(ck)));
                if conflicts {
                    branchable |= 1u64 << j.min(63);
                }
            }
            self.log.push(ChoicePoint {
                taken,
                eligible: self.eligible.len() as u32,
                branchable,
            });
            taken
        } else {
            0
        };
        let core = self.eligible[taken as usize];
        self.runnable[core] = None;
        self.hash.push((core as u64) << 32 | taken as u64);
        self.decisions += 1;
        Some(Decision::new(core, Bound::Step))
    }

    fn core_yielded(&mut self, core: usize, now: u64, runnable: bool, _storming: bool) {
        self.runnable[core] = runnable.then_some(now);
    }

    fn core_released(&mut self, core: usize, now: u64) {
        self.runnable[core] = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retcon_sim::schedule::CoreAction;

    #[test]
    fn trace_roundtrips_through_text() {
        for text in ["", "0", "0.2.1", "63.0.7"] {
            let t = ChoiceTrace::parse(text).unwrap();
            assert_eq!(t.to_string(), text);
        }
        assert!(ChoiceTrace::parse("1.x").is_err());
        assert_eq!(ChoiceTrace::parse("").unwrap(), ChoiceTrace::empty());
    }

    struct LocalPeek;
    impl SchedulePeek for LocalPeek {
        fn num_cores(&self) -> usize {
            3
        }
        fn next_action(&self, _core: usize) -> CoreAction {
            CoreAction::Local
        }
    }

    #[test]
    fn empty_prefix_takes_deterministic_minimum() {
        let mut s = TraceSchedule::new(&ChoiceTrace::empty(), 0);
        s.begin(&[4, 4, 2]);
        let d = s.next_core(&LocalPeek).unwrap();
        assert_eq!(d.core, 2, "unique minimum, not a choice point");
        assert!(s.log().is_empty());
        s.core_yielded(2, 4, true, false);
        let d = s.next_core(&LocalPeek).unwrap();
        assert_eq!(d.core, 0, "tie defaults to lowest id");
        assert_eq!(s.log().len(), 1);
        assert_eq!(s.log()[0].eligible, 3);
        assert_eq!(s.log()[0].taken, 0);
        assert_eq!(
            s.log()[0].branchable,
            0,
            "local actions are never branch-worthy"
        );
    }

    #[test]
    fn out_of_range_prescription_flags_divergence() {
        let mut s = TraceSchedule::new(&ChoiceTrace::parse("7").unwrap(), 0);
        s.begin(&[0, 0, 0]);
        let d = s.next_core(&LocalPeek).unwrap();
        assert_eq!(d.core, 0, "falls back to the deterministic default");
        assert!(s.diverged(), "the clamp must not be silent");

        // A prefix longer than the run's choice points also diverges.
        let mut s = TraceSchedule::new(&ChoiceTrace::parse("0.1.0").unwrap(), 0);
        s.begin(&[0, 0]);
        let d = s.next_core(&LocalPeek).unwrap();
        s.core_yielded(d.core, 1, false, false);
        let d = s.next_core(&LocalPeek).unwrap();
        s.core_yielded(d.core, 2, false, false);
        assert!(s.next_core(&LocalPeek).is_none());
        assert!(s.diverged(), "unconsumed prescription means a bad pairing");
    }

    #[test]
    fn prefix_overrides_choice_points_only() {
        let mut s = TraceSchedule::new(&ChoiceTrace::parse("2.1").unwrap(), 0);
        s.begin(&[0, 0, 0]);
        let d = s.next_core(&LocalPeek).unwrap();
        assert_eq!(d.core, 2, "first choice point takes prescribed index 2");
        s.core_yielded(2, 5, true, false);
        let d = s.next_core(&LocalPeek).unwrap();
        assert_eq!(d.core, 1, "second choice point takes prescribed index 1");
        assert_eq!(s.full_trace().to_string(), "2.1");
    }
}
