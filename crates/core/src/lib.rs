//! RETCON: symbolic tracking and commit-time transactional repair without
//! replay.
//!
//! This crate implements the primary contribution of *RETCON: Transactional
//! Repair Without Replay* (Blundell, Raghavan, Martin — ISCA 2010): a
//! hardware mechanism that lets a transaction **lose cache blocks during
//! execution without aborting**, by tracking the relationship between loaded
//! inputs and produced outputs *symbolically* and repairing the outputs at
//! commit against the inputs' final values.
//!
//! # The mechanism
//!
//! While a transaction runs, selected memory locations (chosen by a
//! conflict-history [`Predictor`]) become **symbolic locations**. A load from
//! a symbolic location records the block's initial contents in the
//! **initial value buffer** ([`Ivb`]) and tags the destination register with
//! the symbolic value `[A] + 0` in the **symbolic register file**
//! ([`SymRegFile`]). Additions and subtractions propagate the tag
//! (`[A] + k`, the §4.4 compressed representation); branches on tagged
//! values add **interval constraints** ([`Constraint`]) on the location's
//! final value; operations that cannot be tracked (multiplies, address
//! generation, two symbolic inputs) pin the root location with an *equality
//! constraint*. Stores of tagged values — and all stores to symbolic
//! locations — are buffered in the **symbolic store buffer** ([`Ssb`]).
//!
//! If a remote core steals a tracked block mid-transaction, nothing aborts:
//! execution continues on the recorded initial values. At commit, the
//! pre-commit repair process (Figure 7 of the paper, [`Engine::validate_and_repair`])
//! reacquires lost blocks, checks every constraint against the final values,
//! and — when they hold — rewrites the transaction's outputs (symbolic
//! registers and buffered stores) as if it had executed with the final
//! values all along.
//!
//! The [`Engine`] type drives all of this for one core; a concurrency-control
//! protocol (crate `retcon-htm`) calls into it at every load, store, ALU
//! operation and branch, and runs the pre-commit process at commit.
//!
//! # Example
//!
//! Track a shared counter through two increments and repair after a remote
//! update, reproducing Figure 2(a) of the paper:
//!
//! ```
//! use retcon::{Engine, RetconConfig, LoadPath};
//! use retcon_isa::{Addr, Reg, BinOp};
//!
//! let counter = Addr(0);
//! let mut eng = Engine::new(RetconConfig::default());
//! eng.begin();
//!
//! // The predictor has learned this address conflicts; track it.
//! assert!(matches!(eng.load_path(counter), LoadPath::Memory));
//! eng.begin_tracking(counter.block(), |_| 0); // initial value 0
//! let v0 = eng.finish_tracked_load(Reg(1), counter);
//! assert_eq!(v0, 0);
//!
//! // r1 += 1 twice: symbolic value becomes [counter] + 2.
//! let v1 = eng.on_alu(BinOp::Add, Reg(1), Reg(1), None, v0, 1);
//! let v2 = eng.on_alu(BinOp::Add, Reg(1), Reg(1), None, v1, 1);
//! assert_eq!(v2, 2);
//!
//! // Store the result back: buffered symbolically.
//! eng.on_store(counter, Reg(1).into(), v2);
//!
//! // Remote core steals the block and commits "+2" of its own...
//! eng.on_steal(counter.block());
//!
//! // ...so at commit, repair re-reads the final value (2) and our store
//! // becomes 2 + 2 = 4 — exactly as if we had run after the remote tx.
//! let repair = eng.validate_and_repair(|_| 2).expect("constraints hold");
//! assert_eq!(repair.stores, vec![(counter, 4)]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod constraint;
mod engine;
mod ivb;
mod predictor;
mod regfile;
mod ssb;
mod stats;
mod sym;

pub use config::RetconConfig;
pub use constraint::Constraint;
pub use engine::{Engine, LoadPath, Repair, StorePath, Violation};
pub use ivb::{Ivb, IvbEntry};
pub use predictor::Predictor;
pub use regfile::SymRegFile;
pub use ssb::{Ssb, SsbEntry, SsbOverflow};
pub use stats::{RetconStats, TxSnapshot};
pub use sym::SymValue;
