//! §5.3 idealized-system comparison.
//!
//! The paper: *"we ran a variant of RETCON that could track unlimited
//! state, reacquired blocks in parallel at commit, and assumed no latency
//! to reperform stores into the cache at commit. These changes did not
//! significantly impact results on any of our workloads."*

use retcon_bench::{print_header, run_at_scale, seq_cycles};
use retcon_workloads::{System, Workload};

fn main() {
    print_header(
        "§5.3 ablation: default RETCON vs idealized (unlimited state, parallel reacquire, free stores)",
        "",
    );
    println!(
        "{:<18} {:>9} {:>9} {:>8}",
        "workload", "RetCon", "ideal", "delta%"
    );
    let mut worst: f64 = 0.0;
    for w in Workload::fig9() {
        let seq = seq_cycles(w);
        let default = run_at_scale(w, System::Retcon).speedup_over(seq);
        let ideal = run_at_scale(w, System::RetconIdeal).speedup_over(seq);
        let delta = 100.0 * (ideal - default) / default;
        worst = worst.max(delta.abs());
        println!(
            "{:<18} {:>9.1} {:>9.1} {:>+8.1}",
            w.label(),
            default,
            ideal,
            delta
        );
    }
    println!("\nLargest |delta|: {worst:.1}% (paper: \"did not significantly impact results\")");
}
