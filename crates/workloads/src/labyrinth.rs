//! The labyrinth model: shortest-path maze routing.
//!
//! STAMP's labyrinth routes wires through a shared grid with long
//! transactions; the paper moves the grid copy *before* the transaction
//! (in place of early release) and attributes its poor scaling to **load
//! imbalance** (§3, footnote: "labyrinth, in which the algorithm induces
//! load imbalance"): path lengths vary wildly, so cores idle at the final
//! barrier. Conflicts are rare because concurrently-routed paths seldom
//! overlap in a large grid.

use retcon_isa::{BinOp, CmpOp, Operand, ProgramBuilder, Reg};

use crate::rng::SplitMix64;
use crate::spec::{Alloc, WorkloadSpec};

/// Total paths routed across all cores.
const TOTAL_PATHS: u64 = 256;
/// Grid words (a large routing grid).
const GRID_WORDS: u64 = 32 * 1024;
/// Minimum path length in cells.
const MIN_LEN: u64 = 8;
/// Maximum extra path length (high variance → imbalance).
const MAX_EXTRA: u64 = 400;
/// Work cycles per routed cell (the pre-transaction private-copy expansion
/// plus the in-transaction path computation).
const WORK_PER_CELL: u32 = 30;

/// Builds the labyrinth model.
pub fn build(num_cores: usize, seed: u64) -> WorkloadSpec {
    let mut alloc = Alloc::new();
    let grid = alloc.alloc_words(GRID_WORDS);
    let iters = (TOTAL_PATHS / num_cores as u64).max(1);
    let mut rng = SplitMix64::new(seed ^ 0x6c61_6279); // "laby"

    let mut programs = Vec::with_capacity(num_cores);
    let mut tapes = Vec::with_capacity(num_cores);
    for core in 0..num_cores {
        let mut core_rng = rng.fork(core as u64);
        // Tape entries: (start cell, length) pairs.
        let mut tape = Vec::with_capacity(2 * iters as usize);
        for _ in 0..iters {
            let len = MIN_LEN + core_rng.below(MAX_EXTRA);
            let start = core_rng.below(GRID_WORDS - len - 1);
            tape.push(start);
            tape.push(len);
        }
        tapes.push(tape);

        let mut b = ProgramBuilder::new();
        let body = b.block();
        let copy_loop = b.block();
        let route_loop = b.block();
        let route_done = b.block();
        let done = b.block();
        let r_iter = Reg(0);
        let r_start = Reg(10);
        let r_len = Reg(11);
        let r_i = Reg(4);
        let r_addr = Reg(5);
        let r_val = Reg(6);

        b.imm(r_iter, iters);
        b.jump(body);

        b.select(body);
        b.input(r_start);
        b.input(r_len);
        // Pre-transaction private grid copy (the paper's restructuring):
        // modelled as per-cell work outside the transaction.
        b.mov(r_i, r_len);
        b.jump(copy_loop);
        b.select(copy_loop);
        b.work(WORK_PER_CELL);
        b.bin(BinOp::Sub, r_i, r_i, Operand::Imm(1));
        let after_copy = b.block();
        b.branch(CmpOp::Gt, r_i, Operand::Imm(0), copy_loop, after_copy);
        b.select(after_copy);

        // The routing transaction: claim every cell of the path.
        b.tx_begin();
        b.imm(r_i, 0);
        b.jump(route_loop);
        b.select(route_loop);
        b.mov(r_addr, r_start);
        b.bin(BinOp::Add, r_addr, r_addr, Operand::Reg(r_i));
        b.bin(BinOp::Add, r_addr, r_addr, Operand::Imm(grid.0 as i64));
        b.load(r_val, r_addr, 0);
        b.bin(BinOp::Add, r_val, r_val, Operand::Imm(1));
        b.store(Operand::Reg(r_val), r_addr, 0);
        b.work(WORK_PER_CELL);
        b.bin(BinOp::Add, r_i, r_i, Operand::Imm(1));
        b.branch(CmpOp::Lt, r_i, Operand::Reg(r_len), route_loop, route_done);
        b.select(route_done);
        b.tx_commit();
        b.bin(BinOp::Sub, r_iter, r_iter, Operand::Imm(1));
        b.branch(CmpOp::Gt, r_iter, Operand::Imm(0), body, done);

        b.select(done);
        b.barrier();
        b.halt();
        programs.push(b.build().expect("labyrinth program is well-formed"));
    }

    WorkloadSpec {
        name: "labyrinth",
        programs,
        tapes,
        init: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_spec, System};

    #[test]
    fn programs_validate() {
        let spec = build(4, 4);
        for p in &spec.programs {
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn imbalance_shows_up_as_barrier_time() {
        let report = run_spec(&build(8, 4), System::Eager, 8).unwrap();
        let b = report.breakdown();
        assert!(
            b.barrier > b.conflict,
            "labyrinth should be imbalance-bound: barrier {} vs conflict {}",
            b.barrier,
            b.conflict
        );
    }

    #[test]
    fn retcon_does_not_change_labyrinth() {
        let spec = build(8, 4);
        let eager = run_spec(&spec, System::Eager, 8).unwrap();
        let retcon = run_spec(&spec, System::Retcon, 8).unwrap();
        let ratio = retcon.cycles as f64 / eager.cycles as f64;
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
    }
}
