//! The intruder model: network-packet processing through shared queues.
//!
//! STAMP's intruder *"dequeues work from one highly contended queue and
//! enqueues work onto another highly contended queue"* and additionally
//! aborts on red-black-tree rebalancing (§3). The paper's restructurings
//! split the queues thread-private and replace the tree with a hashtable
//! (`intruder_opt`); the `-sz` variant re-introduces the table's size
//! field.
//!
//! Crucially for RETCON (§5.4), the queue indices *feed addresses*: the
//! dequeue slot is `ring[head & mask]`. A symbolic head would need an
//! equality constraint, which any remote dequeue violates — so the base
//! variant is exactly the "repair cannot help" case the paper reports.

use retcon_isa::{Addr, BinOp, CmpOp, Operand, ProgramBuilder, Reg};

use crate::hashtable::HashTable;
use crate::rng::SplitMix64;
use crate::spec::{Alloc, WorkloadSpec};

/// Total packets processed across all cores.
const TOTAL_PACKETS: u64 = 4096;
/// Ring capacity (power of two), sized to hold every packet.
const RING_CAP: u64 = 8192;
/// Map buckets.
const BUCKETS: u64 = 512;
/// Per-packet processing work (decoding and flow reassembly).
const WORK: u32 = 1500;
/// The two hot "tree rotation" words of the base variant.
const REBALANCE_PERIOD: u64 = 8;

/// Builds the intruder model. `optimized` applies the thread-private-queue
/// and hashtable restructurings; `resizable` tracks the map's size field.
pub fn build(num_cores: usize, seed: u64, optimized: bool, resizable: bool) -> WorkloadSpec {
    let mut alloc = Alloc::new();
    let size_addr = alloc.alloc_words(1);
    let in_head = alloc.alloc_words(1);
    let in_ring = alloc.alloc_blocks(RING_CAP / 8);
    let out_tail = alloc.alloc_words(1);
    let out_ring = alloc.alloc_blocks(RING_CAP / 8);
    let rot0 = alloc.alloc_words(1);
    let rot1 = alloc.alloc_words(1);
    let table = HashTable::new(
        alloc.alloc_blocks(BUCKETS),
        BUCKETS,
        (optimized && resizable).then_some(size_addr),
        TOTAL_PACKETS * 2,
    );

    let iters = (TOTAL_PACKETS / num_cores as u64).max(1);
    let mut rng = SplitMix64::new(seed ^ 0x696e_7472); // "intr"

    // Pre-fill the shared input ring with every packet.
    let mut init = Vec::new();
    let mut fill = rng.fork(999);
    if !optimized {
        for i in 0..(iters * num_cores as u64) {
            init.push((Addr(in_ring.0 + (i % RING_CAP)), fill.next_u64() >> 8 | 1));
        }
    }

    let mut programs = Vec::with_capacity(num_cores);
    let mut tapes = Vec::with_capacity(num_cores);
    for core in 0..num_cores {
        let mut core_rng = rng.fork(core as u64);
        // The tape supplies packet keys for the optimized (thread-private
        // queue) variant, and rebalance coin flips for the base variant.
        let tape: Vec<u64> = (0..iters).map(|_| core_rng.next_u64() >> 8 | 1).collect();
        tapes.push(tape);

        let mut b = ProgramBuilder::new();
        let body = b.block();
        let after_deq = b.block();
        let after_insert = b.block();
        let after_rebalance = b.block();
        let done = b.block();
        let r_iter = Reg(0);
        let r_key = Reg(10);
        let r_a = Reg(4);
        let r_b = Reg(5);

        b.imm(r_iter, iters);
        b.jump(body);

        b.select(body);
        b.input(r_key); // packet key (base variant overwrites from the queue)
        b.tx_begin();
        b.work(WORK);

        if optimized {
            b.jump(after_deq);
        } else {
            // Dequeue: key = in_ring[head & mask]; head += 1. The loaded
            // head feeds the slot address.
            b.imm(r_a, in_head.0);
            b.load(r_b, r_a, 0); // head
            b.mov(r_key, r_b);
            b.bin(
                BinOp::And,
                r_key,
                r_key,
                Operand::Imm((RING_CAP - 1) as i64),
            );
            b.bin(BinOp::Add, r_key, r_key, Operand::Imm(in_ring.0 as i64));
            b.load(r_key, r_key, 0); // the packet
            b.bin(BinOp::Add, r_b, r_b, Operand::Imm(1));
            b.store(Operand::Reg(r_b), r_a, 0);
            b.jump(after_deq);
        }

        b.select(after_deq);
        table.emit_insert(&mut b, r_key, [Reg(1), Reg(2), Reg(3)], after_insert);
        b.select(after_insert);

        if optimized {
            b.jump(after_rebalance);
        } else {
            // Enqueue the processed packet on the shared output queue.
            b.imm(r_a, out_tail.0);
            b.load(r_b, r_a, 0); // tail
            b.mov(Reg(6), r_b);
            b.bin(
                BinOp::And,
                Reg(6),
                Reg(6),
                Operand::Imm((RING_CAP - 1) as i64),
            );
            b.bin(BinOp::Add, Reg(6), Reg(6), Operand::Imm(out_ring.0 as i64));
            b.store(Operand::Reg(r_key), Reg(6), 0);
            b.bin(BinOp::Add, r_b, r_b, Operand::Imm(1));
            b.store(Operand::Reg(r_b), r_a, 0);

            // Occasional tree-rebalance: blind writes to two hot words.
            let rebalance = b.block();
            b.mov(r_a, r_key);
            b.bin(BinOp::Shr, r_a, r_a, Operand::Imm(3));
            b.bin(
                BinOp::And,
                r_a,
                r_a,
                Operand::Imm((REBALANCE_PERIOD - 1) as i64),
            );
            b.branch(CmpOp::Eq, r_a, Operand::Imm(0), rebalance, after_rebalance);
            b.select(rebalance);
            b.imm(r_a, rot0.0);
            b.store(Operand::Reg(r_key), r_a, 0);
            b.imm(r_a, rot1.0);
            b.store(Operand::Reg(r_key), r_a, 0);
            b.jump(after_rebalance);
        }

        b.select(after_rebalance);
        b.tx_commit();
        b.bin(BinOp::Sub, r_iter, r_iter, Operand::Imm(1));
        b.branch(CmpOp::Gt, r_iter, Operand::Imm(0), body, done);

        b.select(done);
        b.barrier();
        b.halt();
        programs.push(b.build().expect("intruder program is well-formed"));
    }

    WorkloadSpec {
        name: match (optimized, resizable) {
            (false, _) => "intruder",
            (true, false) => "intruder_opt",
            (true, true) => "intruder_opt-sz",
        },
        programs,
        tapes,
        init,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_spec, System};

    #[test]
    fn all_variants_validate() {
        for (optimized, resizable) in [(false, false), (true, false), (true, true)] {
            let spec = build(4, 2, optimized, resizable);
            for p in &spec.programs {
                assert!(p.validate().is_ok());
            }
        }
    }

    #[test]
    fn base_variant_dequeues_every_packet() {
        let spec = build(2, 2, false, false);
        let cfg = retcon_sim::SimConfig::with_cores(2);
        let mut machine =
            retcon_sim::Machine::new(cfg, System::Eager.protocol(2), spec.programs.clone());
        for (i, tape) in spec.tapes.iter().enumerate() {
            machine.set_tape(i, tape.clone());
        }
        for &(a, v) in &spec.init {
            machine.init_word(a, v);
        }
        machine.run().expect("runs");
        // head advanced exactly once per packet.
        assert_eq!(machine.mem().read_word(Addr(8)), TOTAL_PACKETS);
    }

    #[test]
    fn opt_scales_better_than_base() {
        let base = run_spec(&build(8, 2, false, false), System::Eager, 8).unwrap();
        let opt = run_spec(&build(8, 2, true, false), System::Eager, 8).unwrap();
        assert!(
            opt.cycles < base.cycles,
            "opt {} !< base {}",
            opt.cycles,
            base.cycles
        );
    }

    #[test]
    fn retcon_helps_sz_but_not_base() {
        let base_e = run_spec(&build(8, 2, false, false), System::Eager, 8).unwrap();
        let base_r = run_spec(&build(8, 2, false, false), System::Retcon, 8).unwrap();
        let sz_e = run_spec(&build(8, 2, true, true), System::Eager, 8).unwrap();
        let sz_r = run_spec(&build(8, 2, true, true), System::Retcon, 8).unwrap();
        // -sz: RETCON clearly faster.
        assert!(sz_r.cycles < sz_e.cycles);
        // base: RETCON within noise of eager (no large win).
        let ratio = base_r.cycles as f64 / base_e.cycles as f64;
        assert!(
            ratio > 0.5,
            "unexpected RETCON speedup on base intruder: {ratio}"
        );
    }
}
