//! Figure 10: runtime breakdown normalized to the eager baseline.
//!
//! For each workload and system, bars are scaled so eager's total is 1.0;
//! a RETCON bar shorter than 1.0 means RETCON finished in less total
//! core-time than eager, and its conflict component shows how much
//! conflict time repair eliminated.

use retcon_bench::{breakdown_row, print_header, run_at_scale};
use retcon_workloads::{System, Workload};

fn main() {
    print_header(
        "Figure 10: time breakdown normalized to eager (busy/conflict/barrier/other)",
        "",
    );
    println!(
        "{:<18} {:<9} {:>7} {:>9} {:>9} {:>7} {:>7}",
        "workload", "system", "busy", "conflict", "barrier", "other", "total"
    );
    for w in Workload::fig9() {
        let eager_total = run_at_scale(w, System::Eager).breakdown().total();
        for s in System::FIG9 {
            let r = run_at_scale(w, s);
            let (busy, conflict, barrier, other) = breakdown_row(&r, eager_total);
            println!(
                "{:<18} {:<9} {:>7.3} {:>9.3} {:>9.3} {:>7.3} {:>7.3}",
                w.label(),
                s.label(),
                busy,
                conflict,
                barrier,
                other,
                busy + conflict + barrier + other,
            );
        }
        println!();
    }
    println!("Expected shape: RetCon's conflict component collapses on the -sz");
    println!("variants and python_opt; elsewhere bars match eager.");
}
