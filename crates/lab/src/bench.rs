//! Wall-clock benchmarking of the dataset matrix: the machine-readable
//! perf trajectory (`BENCH_hotpath.json`).
//!
//! `retcon-lab -- bench` times the same shared-cache regeneration flow as
//! `retcon-lab -- all` (dataset by dataset, records discarded) and emits a
//! small JSON report so successive PRs can diff simulator wall-clock
//! without re-deriving it from CI logs. Cycle *counts* are pinned
//! byte-identical by the golden snapshot and `tests/determinism.rs`;
//! this file tracks the only thing allowed to change: how fast the
//! simulator produces them.

use crate::datasets::Dataset;
use crate::runner::ReportCache;
use retcon_sim::SimError;
use std::time::Instant;

/// Wall-clock timing of one dataset's regeneration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetBench {
    /// Dataset name (`fig9`, `scaling`, ...).
    pub name: &'static str,
    /// Number of simulation runs the dataset's record holds.
    pub runs: u64,
    /// Wall-clock microseconds to regenerate the dataset (shared cache, so
    /// datasets that reuse earlier simulations are cheap — same as `all`).
    pub micros: u64,
}

/// The full benchmark report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// Worker threads used (`--jobs`).
    pub jobs: u64,
    /// Seconds since the Unix epoch when the benchmark ran.
    pub unix_time: u64,
    /// Per-dataset timings, in regeneration order.
    pub datasets: Vec<DatasetBench>,
}

impl BenchReport {
    /// Total wall-clock microseconds across all datasets.
    pub fn total_micros(&self) -> u64 {
        self.datasets.iter().map(|d| d.micros).sum()
    }

    /// Total simulation runs across all datasets.
    pub fn total_runs(&self) -> u64 {
        self.datasets.iter().map(|d| d.runs).sum()
    }

    /// Mean microseconds per simulation run, rounded down.
    pub fn mean_micros_per_run(&self) -> u64 {
        self.total_micros()
            .checked_div(self.total_runs())
            .unwrap_or(0)
    }

    /// The report as pretty-printed JSON (hand-rolled and integer-only,
    /// like every other record emitter in this crate).
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"bench_hotpath_v1\",\n");
        out.push_str(&format!("  \"unix_time\": {},\n", self.unix_time));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"total_runs\": {},\n", self.total_runs()));
        out.push_str(&format!("  \"total_micros\": {},\n", self.total_micros()));
        out.push_str(&format!(
            "  \"mean_micros_per_run\": {},\n",
            self.mean_micros_per_run()
        ));
        out.push_str("  \"datasets\": [\n");
        for (i, d) in self.datasets.iter().enumerate() {
            let mean = d.micros.checked_div(d.runs).unwrap_or(0);
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"runs\": {}, \"micros\": {}, \"mean_micros_per_run\": {}}}{}\n",
                d.name,
                d.runs,
                d.micros,
                mean,
                if i + 1 < self.datasets.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Regenerates every dataset once (shared report cache, records discarded)
/// and returns the wall-clock trajectory.
///
/// # Errors
///
/// Propagates the first [`SimError`] (fatal — indicates a workload bug).
pub fn run_bench(jobs: usize) -> Result<BenchReport, SimError> {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let cache = ReportCache::new();
    let mut datasets = Vec::new();
    for dataset in Dataset::ALL {
        let t = Instant::now();
        let record = dataset.collect_cached(jobs, &cache)?;
        datasets.push(DatasetBench {
            name: dataset.name(),
            runs: record.runs.len() as u64,
            micros: t.elapsed().as_micros() as u64,
        });
    }
    Ok(BenchReport {
        jobs: jobs as u64,
        unix_time,
        datasets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let report = BenchReport {
            jobs: 1,
            unix_time: 1000,
            datasets: vec![
                DatasetBench {
                    name: "fig2",
                    runs: 5,
                    micros: 1500,
                },
                DatasetBench {
                    name: "table1",
                    runs: 0,
                    micros: 2,
                },
            ],
        };
        let json = report.to_json_string();
        assert!(json.contains("\"schema\": \"bench_hotpath_v1\""));
        assert!(json.contains("\"total_runs\": 5"));
        assert!(json.contains("\"total_micros\": 1502"));
        assert!(json.contains("\"mean_micros_per_run\": 300,"));
        assert!(json.contains(
            "{\"name\": \"fig2\", \"runs\": 5, \"micros\": 1500, \"mean_micros_per_run\": 300},"
        ));
        // Zero-run datasets do not divide by zero.
        assert!(json.contains(
            "{\"name\": \"table1\", \"runs\": 0, \"micros\": 2, \"mean_micros_per_run\": 0}"
        ));
    }
}
