//! Programs, basic blocks and program counters.

use std::fmt;

use crate::instr::Instr;
use crate::reg::{Reg, NUM_REGS};
use crate::Operand;

/// Identifier of a basic block within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// A straight-line sequence of instructions ending in a control transfer
/// (`Branch`, `Jump` or `Halt`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BasicBlock {
    /// The instructions of the block, terminator last.
    pub instrs: Vec<Instr>,
}

/// A program counter: a block and an instruction index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pc {
    /// Current basic block.
    pub block: BlockId,
    /// Index of the next instruction to execute within the block.
    pub index: usize,
}

impl Pc {
    /// The program counter at the start of `block`.
    #[inline]
    pub fn at(block: BlockId) -> Pc {
        Pc { block, index: 0 }
    }

    /// The program counter one instruction later within the same block.
    #[inline]
    pub fn next(self) -> Pc {
        Pc {
            block: self.block,
            index: self.index + 1,
        }
    }
}

/// Error returned by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A block is empty.
    EmptyBlock(BlockId),
    /// A block's final instruction is not a terminator.
    MissingTerminator(BlockId),
    /// A terminator appears before the end of a block.
    EarlyTerminator(BlockId, usize),
    /// An instruction names a register outside `r0..r31`.
    BadRegister(BlockId, usize, Reg),
    /// A control transfer targets a nonexistent block.
    BadTarget(BlockId, usize, BlockId),
    /// The program has no blocks at all.
    NoBlocks,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::EmptyBlock(b) => write!(f, "block b{} is empty", b.0),
            ValidateError::MissingTerminator(b) => {
                write!(f, "block b{} does not end in a terminator", b.0)
            }
            ValidateError::EarlyTerminator(b, i) => {
                write!(f, "terminator in the middle of block b{} at index {i}", b.0)
            }
            ValidateError::BadRegister(b, i, r) => {
                write!(
                    f,
                    "instruction {i} of block b{} names invalid register {r}",
                    b.0
                )
            }
            ValidateError::BadTarget(b, i, t) => {
                write!(
                    f,
                    "instruction {i} of block b{} targets missing block b{}",
                    b.0, t.0
                )
            }
            ValidateError::NoBlocks => write!(f, "program has no blocks"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// A complete program for one simulated core: a list of basic blocks.
/// Execution begins at block 0.
///
/// Programs are produced by [`ProgramBuilder`](crate::ProgramBuilder), which
/// validates on `build`; [`Program::validate`] re-checks the same structural
/// invariants and is cheap enough to call defensively before simulation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The basic blocks; [`BlockId`] indexes this vector.
    pub blocks: Vec<BasicBlock>,
}

impl Program {
    /// The entry point: the start of block 0.
    #[inline]
    pub fn entry(&self) -> Pc {
        Pc::at(BlockId(0))
    }

    /// Fetches the instruction at `pc`, or `None` if `pc` is out of range.
    #[inline]
    pub fn fetch(&self, pc: Pc) -> Option<&Instr> {
        self.blocks.get(pc.block.0 as usize)?.instrs.get(pc.index)
    }

    /// The instruction slice of `block` (empty if `block` is out of range).
    /// Interpreters cache this across the straight-line instructions of a
    /// block so the per-instruction fetch is a single indexed load.
    #[inline]
    pub fn block_instrs(&self, block: BlockId) -> &[Instr] {
        self.blocks
            .get(block.0 as usize)
            .map(|b| b.instrs.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of instructions across all blocks.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// `true` if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks the structural invariants required by the interpreter:
    ///
    /// * at least one block; no block empty;
    /// * every block ends with a terminator and contains no interior
    ///   terminator;
    /// * every named register is architectural;
    /// * every branch/jump target exists.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, in block order.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.blocks.is_empty() {
            return Err(ValidateError::NoBlocks);
        }
        let nblocks = self.blocks.len() as u32;
        let check_target = |b: BlockId, i: usize, t: BlockId| {
            if t.0 < nblocks {
                Ok(())
            } else {
                Err(ValidateError::BadTarget(b, i, t))
            }
        };
        let check_reg = |b: BlockId, i: usize, r: Reg| {
            if (r.0 as usize) < NUM_REGS {
                Ok(())
            } else {
                Err(ValidateError::BadRegister(b, i, r))
            }
        };
        let check_operand = |b: BlockId, i: usize, o: Operand| match o {
            Operand::Reg(r) => check_reg(b, i, r),
            Operand::Imm(_) => Ok(()),
        };
        for (bi, block) in self.blocks.iter().enumerate() {
            let bid = BlockId(bi as u32);
            let n = block.instrs.len();
            if n == 0 {
                return Err(ValidateError::EmptyBlock(bid));
            }
            for (i, instr) in block.instrs.iter().enumerate() {
                let last = i == n - 1;
                if instr.is_terminator() && !last {
                    return Err(ValidateError::EarlyTerminator(bid, i));
                }
                if last && !instr.is_terminator() {
                    return Err(ValidateError::MissingTerminator(bid));
                }
                match *instr {
                    Instr::Imm { dst, .. } | Instr::Input { dst } => check_reg(bid, i, dst)?,
                    Instr::Mov { dst, src } => {
                        check_reg(bid, i, dst)?;
                        check_reg(bid, i, src)?;
                    }
                    Instr::Bin { dst, lhs, rhs, .. } => {
                        check_reg(bid, i, dst)?;
                        check_reg(bid, i, lhs)?;
                        check_operand(bid, i, rhs)?;
                    }
                    Instr::Load { dst, addr, .. } => {
                        check_reg(bid, i, dst)?;
                        check_reg(bid, i, addr)?;
                    }
                    Instr::Store { src, addr, .. } => {
                        check_operand(bid, i, src)?;
                        check_reg(bid, i, addr)?;
                    }
                    Instr::Branch {
                        lhs,
                        rhs,
                        taken,
                        not_taken,
                        ..
                    } => {
                        check_reg(bid, i, lhs)?;
                        check_operand(bid, i, rhs)?;
                        check_target(bid, i, taken)?;
                        check_target(bid, i, not_taken)?;
                    }
                    Instr::Jump { target } => check_target(bid, i, target)?,
                    Instr::Work { .. }
                    | Instr::TxBegin
                    | Instr::TxCommit
                    | Instr::Barrier
                    | Instr::Halt => {}
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (bi, block) in self.blocks.iter().enumerate() {
            writeln!(f, "b{bi}:")?;
            for instr in &block.instrs {
                writeln!(f, "    {instr}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, CmpOp};

    fn counter_program() -> Program {
        Program {
            blocks: vec![
                BasicBlock {
                    instrs: vec![
                        Instr::Imm {
                            dst: Reg(0),
                            value: 5,
                        },
                        Instr::Jump { target: BlockId(1) },
                    ],
                },
                BasicBlock {
                    instrs: vec![
                        Instr::Bin {
                            op: BinOp::Sub,
                            dst: Reg(0),
                            lhs: Reg(0),
                            rhs: Operand::Imm(1),
                        },
                        Instr::Branch {
                            op: CmpOp::Gt,
                            lhs: Reg(0),
                            rhs: Operand::Imm(0),
                            taken: BlockId(1),
                            not_taken: BlockId(2),
                        },
                    ],
                },
                BasicBlock {
                    instrs: vec![Instr::Halt],
                },
            ],
        }
    }

    #[test]
    fn valid_program_passes() {
        let p = counter_program();
        assert!(p.validate().is_ok());
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
    }

    #[test]
    fn fetch_follows_pc() {
        let p = counter_program();
        let pc = p.entry();
        assert!(matches!(p.fetch(pc), Some(Instr::Imm { .. })));
        assert!(matches!(p.fetch(pc.next()), Some(Instr::Jump { .. })));
        assert!(p
            .fetch(Pc {
                block: BlockId(9),
                index: 0
            })
            .is_none());
        assert!(p
            .fetch(Pc {
                block: BlockId(0),
                index: 99
            })
            .is_none());
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Program::default().validate(), Err(ValidateError::NoBlocks));
    }

    #[test]
    fn empty_block_rejected() {
        let mut p = counter_program();
        p.blocks.push(BasicBlock::default());
        assert_eq!(p.validate(), Err(ValidateError::EmptyBlock(BlockId(3))));
    }

    #[test]
    fn missing_terminator_rejected() {
        let p = Program {
            blocks: vec![BasicBlock {
                instrs: vec![Instr::TxBegin],
            }],
        };
        assert_eq!(
            p.validate(),
            Err(ValidateError::MissingTerminator(BlockId(0)))
        );
    }

    #[test]
    fn early_terminator_rejected() {
        let p = Program {
            blocks: vec![BasicBlock {
                instrs: vec![Instr::Halt, Instr::Halt],
            }],
        };
        assert_eq!(
            p.validate(),
            Err(ValidateError::EarlyTerminator(BlockId(0), 0))
        );
    }

    #[test]
    fn bad_register_rejected() {
        let p = Program {
            blocks: vec![BasicBlock {
                instrs: vec![
                    Instr::Imm {
                        dst: Reg(200),
                        value: 0,
                    },
                    Instr::Halt,
                ],
            }],
        };
        assert_eq!(
            p.validate(),
            Err(ValidateError::BadRegister(BlockId(0), 0, Reg(200)))
        );
    }

    #[test]
    fn bad_target_rejected() {
        let p = Program {
            blocks: vec![BasicBlock {
                instrs: vec![Instr::Jump { target: BlockId(7) }],
            }],
        };
        assert_eq!(
            p.validate(),
            Err(ValidateError::BadTarget(BlockId(0), 0, BlockId(7)))
        );
    }

    #[test]
    fn display_renders_blocks() {
        let text = counter_program().to_string();
        assert!(text.contains("b0:"));
        assert!(text.contains("halt"));
    }
}
