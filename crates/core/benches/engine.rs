//! Micro-benchmarks for the RETCON engine's per-instruction paths
//! (vendored criterion shim).
//!
//! `on_alu` runs once per ALU instruction of every transactional region and
//! `load_path` once per load; both must stay allocation-free and a handful
//! of nanoseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use retcon::{Engine, LoadPath, RetconConfig};
use retcon_isa::{Addr, BinOp, Reg};

fn tracked_engine() -> Engine {
    let mut eng = Engine::new(RetconConfig::default());
    eng.begin();
    assert!(eng.begin_tracking(Addr(0).block(), |_| 7));
    eng
}

fn bench_on_alu(c: &mut Criterion) {
    let mut group = c.benchmark_group("on_alu");
    group.bench_function("symbolic_add_propagation", |b| {
        let mut eng = tracked_engine();
        let v = eng.finish_tracked_load(Reg(1), Addr(0));
        b.iter(|| black_box(eng.on_alu(BinOp::Add, Reg(1), Reg(1), None, black_box(v), 1)))
    });
    group.bench_function("concrete_add", |b| {
        // No symbolic inputs: the common non-tracked case.
        let mut eng = tracked_engine();
        eng.on_imm(Reg(2));
        b.iter(|| black_box(eng.on_alu(BinOp::Add, Reg(2), Reg(2), None, black_box(5), 1)))
    });
    group.finish();
}

fn bench_load_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("load_path");
    group.bench_function("initial_value_hit", |b| {
        let eng = tracked_engine();
        b.iter(|| {
            let p = eng.load_path(Addr(0));
            debug_assert!(matches!(p, LoadPath::InitialValue { .. }));
            black_box(p)
        })
    });
    group.bench_function("store_forward_hit", |b| {
        let mut eng = tracked_engine();
        let v = eng.finish_tracked_load(Reg(1), Addr(0));
        eng.on_store(Addr(0), Some(Reg(1)), v);
        b.iter(|| {
            let p = eng.load_path(Addr(0));
            debug_assert!(matches!(p, LoadPath::StoreForward { .. }));
            black_box(p)
        })
    });
    group.bench_function("memory_miss", |b| {
        let eng = tracked_engine();
        b.iter(|| black_box(eng.load_path(Addr(512))))
    });
    group.finish();
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit");
    group.bench_function("validate_and_repair_one_block", |b| {
        b.iter(|| {
            let mut eng = tracked_engine();
            let v = eng.finish_tracked_load(Reg(1), Addr(0));
            let v = eng.on_alu(BinOp::Add, Reg(1), Reg(1), None, v, 1);
            eng.on_store(Addr(0), Some(Reg(1)), v);
            black_box(eng.validate_and_repair(|_| 9).expect("repairs"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_on_alu, bench_load_path, bench_commit);
criterion_main!(benches);
