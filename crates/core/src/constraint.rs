//! Interval constraints on the final values of symbolic locations.
//!
//! §4.4 of the paper: *"Any number of constraints with (≤,<,=,>,≥) can be
//! represented precisely by the most restrictive interval bounding the
//! symbolic value. Any number of not-equal-to constraints can be represented
//! similarly by an interval that the symbolic value must remain without with
//! some loss of precision."*
//!
//! A [`Constraint`] therefore holds an inclusive *allowed* interval
//! `[lo, hi]` plus an optional inclusive *excluded* interval covering every
//! `≠` bound seen so far. Growing the excluded interval to cover multiple
//! `≠` points can only reject more commits than strictly necessary — a
//! conservative (sound) loss of precision, exactly as the paper describes.

use std::fmt;

use retcon_isa::CmpOp;

/// An interval constraint on the final (commit-time) value of one symbolic
/// word.
///
/// Branch outcomes are folded in with [`Constraint::add_branch`]: a branch
/// that observed `([root] + offset) cmp bound == outcome` during execution
/// constrains the root's final value so that re-evaluating the branch with
/// the final value takes the same direction — the condition under which
/// commit-time repair preserves control flow.
///
/// # Example
///
/// ```
/// use retcon::Constraint;
/// use retcon_isa::CmpOp;
///
/// // Observed: ([A] + 1) > 5 taken  =>  [A] > 4.
/// let mut c = Constraint::unconstrained();
/// c.add_branch(1, CmpOp::Gt, 5, true);
/// assert!(!c.satisfied_by(4));
/// assert!(c.satisfied_by(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constraint {
    lo: u64,
    hi: u64,
    excluded: Option<(u64, u64)>,
}

impl Default for Constraint {
    fn default() -> Self {
        Self::unconstrained()
    }
}

impl Constraint {
    /// A constraint satisfied by every value.
    pub fn unconstrained() -> Self {
        Constraint {
            lo: 0,
            hi: u64::MAX,
            excluded: None,
        }
    }

    /// A constraint satisfied by no value (forces an abort at commit).
    pub fn unsatisfiable() -> Self {
        Constraint {
            lo: 1,
            hi: 0,
            excluded: None,
        }
    }

    /// A constraint satisfied only by `v` (an equality constraint).
    pub fn equal_to(v: u64) -> Self {
        Constraint {
            lo: v,
            hi: v,
            excluded: None,
        }
    }

    /// `true` if no value satisfies the constraint.
    pub fn is_unsatisfiable(&self) -> bool {
        if self.lo > self.hi {
            return true;
        }
        // The excluded interval may cover the whole allowed range.
        matches!(self.excluded, Some((elo, ehi)) if elo <= self.lo && self.hi <= ehi)
    }

    /// `true` if every value satisfies the constraint.
    pub fn is_unconstrained(&self) -> bool {
        self.lo == 0 && self.hi == u64::MAX && self.excluded.is_none()
    }

    /// The inclusive allowed bounds `[lo, hi]`.
    pub fn bounds(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }

    /// Does `x` satisfy the constraint?
    #[inline]
    pub fn satisfied_by(&self, x: u64) -> bool {
        if x < self.lo || x > self.hi {
            return false;
        }
        match self.excluded {
            Some((elo, ehi)) => x < elo || x > ehi,
            None => true,
        }
    }

    /// Requires `x cmp bound` to hold.
    pub fn add_cmp(&mut self, cmp: CmpOp, bound: u64) {
        match cmp {
            CmpOp::Eq => {
                self.lo = self.lo.max(bound);
                self.hi = self.hi.min(bound);
            }
            CmpOp::Ne => self.exclude(bound),
            CmpOp::Lt => {
                if bound == 0 {
                    *self = Self::unsatisfiable();
                } else {
                    self.hi = self.hi.min(bound - 1);
                }
            }
            CmpOp::Le => self.hi = self.hi.min(bound),
            CmpOp::Gt => {
                if bound == u64::MAX {
                    *self = Self::unsatisfiable();
                } else {
                    self.lo = self.lo.max(bound + 1);
                }
            }
            CmpOp::Ge => self.lo = self.lo.max(bound),
        }
    }

    /// Folds in an observed branch on a symbolic value rooted at this word:
    /// during execution `([root] + offset) cmp bound` evaluated to `taken`.
    /// The root's final value `x` must make `(x + offset) cmp bound` evaluate
    /// the same way.
    ///
    /// The translation from a bound on `x + offset` to a bound on `x` uses
    /// 128-bit arithmetic and treats the addition mathematically (no wrap):
    /// auxiliary counters never approach the 2⁶⁴ boundary, and a translation
    /// that would require wrapping collapses the constraint conservatively
    /// (never admits a value the exact predicate would reject).
    pub fn add_branch(&mut self, offset: i64, cmp: CmpOp, bound: u64, taken: bool) {
        let effective = if taken { cmp } else { cmp.negate() };
        // Solve (x + offset) effective bound for x: x effective (bound - offset).
        let t = bound as i128 - offset as i128;
        if (0..=u64::MAX as i128).contains(&t) {
            self.add_cmp(effective, t as u64);
            return;
        }
        // The translated bound falls outside u64. Resolve by the sign of t
        // under the no-wrap reading of x + offset (x >= 0):
        //   t < 0:  every x satisfies x > t, no x satisfies x < t.
        //   t > MAX: every x satisfies x < t, no x satisfies x > t.
        let below = t < 0;
        let always = match effective {
            CmpOp::Eq => false,
            CmpOp::Ne => true,
            CmpOp::Lt | CmpOp::Le => !below,
            CmpOp::Gt | CmpOp::Ge => below,
        };
        if !always {
            *self = Self::unsatisfiable();
        }
    }

    /// Requires `x != bound`, growing the excluded interval per §4.4.
    fn exclude(&mut self, bound: u64) {
        self.excluded = Some(match self.excluded {
            None => (bound, bound),
            Some((elo, ehi)) => (elo.min(bound), ehi.max(bound)),
        });
    }

    /// Intersects with another constraint (both must hold).
    pub fn intersect(&mut self, other: &Constraint) {
        self.lo = self.lo.max(other.lo);
        self.hi = self.hi.min(other.hi);
        if let Some((elo, ehi)) = other.excluded {
            self.exclude(elo);
            self.exclude(ehi);
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unsatisfiable() {
            return write!(f, "⊥");
        }
        write!(f, "[{}, {}]", self.lo, self.hi)?;
        if let Some((elo, ehi)) = self.excluded {
            write!(f, " \\ [{elo}, {ehi}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_accepts_everything() {
        let c = Constraint::unconstrained();
        assert!(c.satisfied_by(0));
        assert!(c.satisfied_by(u64::MAX));
        assert!(c.is_unconstrained());
        assert!(!c.is_unsatisfiable());
    }

    #[test]
    fn equality_pins_one_value() {
        let c = Constraint::equal_to(7);
        assert!(c.satisfied_by(7));
        assert!(!c.satisfied_by(6));
        assert!(!c.satisfied_by(8));
    }

    #[test]
    fn cmp_constraints_narrow() {
        let mut c = Constraint::unconstrained();
        c.add_cmp(CmpOp::Ge, 5);
        c.add_cmp(CmpOp::Lt, 10);
        assert_eq!(c.bounds(), (5, 9));
        assert!(c.satisfied_by(5) && c.satisfied_by(9));
        assert!(!c.satisfied_by(4) && !c.satisfied_by(10));
    }

    #[test]
    fn contradictory_constraints_unsatisfiable() {
        let mut c = Constraint::unconstrained();
        c.add_cmp(CmpOp::Gt, 10);
        c.add_cmp(CmpOp::Lt, 5);
        assert!(c.is_unsatisfiable());
        assert!(!c.satisfied_by(7));
    }

    #[test]
    fn boundary_cmp_edge_cases() {
        let mut c = Constraint::unconstrained();
        c.add_cmp(CmpOp::Lt, 0); // nothing is < 0
        assert!(c.is_unsatisfiable());

        let mut c = Constraint::unconstrained();
        c.add_cmp(CmpOp::Gt, u64::MAX); // nothing is > MAX
        assert!(c.is_unsatisfiable());
    }

    #[test]
    fn ne_exclusion_grows_interval() {
        let mut c = Constraint::unconstrained();
        c.add_cmp(CmpOp::Ne, 5);
        assert!(!c.satisfied_by(5));
        assert!(c.satisfied_by(4) && c.satisfied_by(6));
        c.add_cmp(CmpOp::Ne, 10);
        // Precision loss per §4.4: 7 now excluded too.
        assert!(!c.satisfied_by(7));
        assert!(c.satisfied_by(4) && c.satisfied_by(11));
    }

    #[test]
    fn excluded_covering_allowed_range_is_unsatisfiable() {
        let mut c = Constraint::unconstrained();
        c.add_cmp(CmpOp::Ge, 5);
        c.add_cmp(CmpOp::Le, 6);
        c.add_cmp(CmpOp::Ne, 5);
        c.add_cmp(CmpOp::Ne, 6);
        assert!(c.is_unsatisfiable());
    }

    #[test]
    fn branch_translation_paper_example() {
        // Paper §4.2: "a taken branch based on if a register with symbolic
        // value [A]+1 is greater than 5 would generate the constraint
        // [A]+1>5 or, simplified, [A]>4".
        let mut c = Constraint::unconstrained();
        c.add_branch(1, CmpOp::Gt, 5, true);
        assert_eq!(c.bounds(), (5, u64::MAX));

        // "Non-taken branches record the negation ([A]<=4)".
        let mut c = Constraint::unconstrained();
        c.add_branch(1, CmpOp::Gt, 5, false);
        assert_eq!(c.bounds(), (0, 4));
    }

    #[test]
    fn branch_translation_negative_offset() {
        // ([A] - 3) < 10 taken  =>  [A] < 13.
        let mut c = Constraint::unconstrained();
        c.add_branch(-3, CmpOp::Lt, 10, true);
        assert_eq!(c.bounds(), (0, 12));
    }

    #[test]
    fn branch_translation_out_of_range_bound() {
        // ([A] + 10) > 5 is true for every non-negative [A] (t = -5): the
        // constraint must remain satisfiable by everything.
        let mut c = Constraint::unconstrained();
        c.add_branch(10, CmpOp::Gt, 5, true);
        assert!(c.is_unconstrained());

        // ([A] + 10) < 5 can never hold without wrapping: taken outcome is
        // conservatively unsatisfiable.
        let mut c = Constraint::unconstrained();
        c.add_branch(10, CmpOp::Lt, 5, true);
        assert!(c.is_unsatisfiable());

        // ([A] - 10) < u64::MAX - 5  ==> t > u64::MAX, always true.
        let mut c = Constraint::unconstrained();
        c.add_branch(-10, CmpOp::Lt, u64::MAX - 5, true);
        assert!(c.is_unconstrained());
    }

    #[test]
    fn branch_matches_direct_predicate_on_small_values() {
        // For in-range values, the interval decision must equal direct
        // re-evaluation of the branch predicate.
        for cmp in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for offset in [-3i64, 0, 2] {
                for bound in [0u64, 1, 5, 9] {
                    for taken in [false, true] {
                        let mut c = Constraint::unconstrained();
                        c.add_branch(offset, cmp, bound, taken);
                        for x in 0u64..16 {
                            let shifted = x as i128 + offset as i128;
                            if shifted < 0 {
                                continue; // outside the no-wrap domain
                            }
                            let direct = cmp.apply(shifted as u64, bound) == taken;
                            assert_eq!(
                                c.satisfied_by(x),
                                direct,
                                "cmp={cmp:?} off={offset} bound={bound} taken={taken} x={x}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn intersect_combines() {
        let mut a = Constraint::unconstrained();
        a.add_cmp(CmpOp::Ge, 3);
        let mut b = Constraint::unconstrained();
        b.add_cmp(CmpOp::Le, 8);
        b.add_cmp(CmpOp::Ne, 5);
        a.intersect(&b);
        assert!(a.satisfied_by(3) && a.satisfied_by(8));
        assert!(!a.satisfied_by(5));
        assert!(!a.satisfied_by(2) && !a.satisfied_by(9));
    }

    #[test]
    fn display_renders() {
        let mut c = Constraint::unconstrained();
        c.add_cmp(CmpOp::Ge, 1);
        c.add_cmp(CmpOp::Ne, 3);
        let s = c.to_string();
        assert!(s.contains('1'));
        assert!(s.contains('3'));
        assert_eq!(Constraint::unsatisfiable().to_string(), "⊥");
    }
}
