//! Executable paper-shape expectations.
//!
//! EXPERIMENTS.md's qualitative claims — who wins, by roughly what
//! factor, where the crossovers sit — live here as a declarative table of
//! [`Check`]s evaluated against fresh [`ExperimentRecord`]s. `retcon-lab
//! -- check` runs the full table against 32-core records; `--quick` runs
//! a reduced-scale subset (2-core fig2 plus an 8-core fig9 slice) cheap
//! enough to gate merges in CI.
//!
//! Absolute cycle counts are substrate-specific (see `EXPERIMENTS.md`),
//! so every expectation is a *ratio* or a *budget* — scale-free claims
//! that must survive simulator refactors.

use crate::datasets::Dataset;
use crate::record::ExperimentRecord;
use crate::runner::{run_jobs, Job};
use crate::SEED;
use retcon_sim::SimError;
use retcon_workloads::{System, Workload};
use std::collections::BTreeMap;

/// The core count `--quick` checks run at.
pub const QUICK_CORES: usize = 8;

/// A qualitative claim about one dataset.
#[derive(Debug, Clone)]
pub struct Check {
    /// The dataset the claim reads.
    pub dataset: Dataset,
    /// Short display name.
    pub name: &'static str,
    /// The claim itself.
    pub expect: Expect,
}

/// The expectation language: every variant is a scale-free comparison.
#[derive(Debug, Clone)]
pub enum Expect {
    /// `winner`'s speedup exceeds `factor ×` every system in `over`.
    Rescued {
        /// Workload label.
        workload: &'static str,
        /// The winning system label.
        winner: &'static str,
        /// The systems it must dominate.
        over: &'static [&'static str],
        /// The required ratio.
        factor: f64,
    },
    /// `winner`'s speedup exceeds `factor ×` `loser`'s.
    Beats {
        /// Workload label.
        workload: &'static str,
        /// Faster system label.
        winner: &'static str,
        /// Slower system label.
        loser: &'static str,
        /// The required ratio.
        factor: f64,
    },
    /// `system`'s speedup stays below `factor × max(reference, 1)` —
    /// repair must *not* rescue this workload.
    NotRescued {
        /// Workload label.
        workload: &'static str,
        /// The system that should not win.
        system: &'static str,
        /// The reference system.
        reference: &'static str,
        /// The allowed ratio.
        factor: f64,
    },
    /// The systems' speedups all lie within `within ×` of each other.
    Insensitive {
        /// Workload label.
        workload: &'static str,
        /// Systems to compare.
        systems: &'static [&'static str],
        /// Allowed max/min ratio.
        within: f64,
    },
    /// Every listed system commits the same transaction count (no lost
    /// or phantom transactions across designs).
    CommitsAgree {
        /// Workload label.
        workload: &'static str,
        /// Systems to compare.
        systems: &'static [&'static str],
    },
    /// `system` aborts at most `max` times.
    AbortsAtMost {
        /// Workload label.
        workload: &'static str,
        /// System label.
        system: &'static str,
        /// Inclusive bound.
        max: u64,
    },
    /// `winner` aborts strictly fewer times than `loser`.
    FewerAborts {
        /// Workload label.
        workload: &'static str,
        /// System expected to abort less.
        winner: &'static str,
        /// System expected to abort more.
        loser: &'static str,
    },
    /// `system`'s conflict cycles collapse below `factor ×` those of
    /// `reference` (the Figure 10 claim).
    ConflictCollapses {
        /// Workload label.
        workload: &'static str,
        /// System whose conflict time must shrink.
        system: &'static str,
        /// Reference system.
        reference: &'static str,
        /// Allowed ratio.
        factor: f64,
    },
    /// Table 3 budget: RETCON's structures stay small and pre-commit
    /// repair stays a bounded fraction of transaction lifetime.
    StructureBudget {
        /// Workload label.
        workload: &'static str,
        /// Max IVB entries observed.
        blocks_tracked: u64,
        /// Max symbolic store buffer entries observed.
        private_stores: u64,
        /// Max constraint addresses observed.
        constraint_addrs: u64,
        /// Max commit-stall percentage.
        stall_pct: f64,
    },
    /// The idealized variant changes the speedup by at most `pct`%.
    DeltaWithin {
        /// Workload label.
        workload: &'static str,
        /// Default system label.
        a: &'static str,
        /// Idealized system label.
        b: &'static str,
        /// Allowed |delta| percentage.
        pct: f64,
    },
    /// `system`'s speedup reaches at least `min` (used for the Figure 1
    /// bimodal split, which is inherently a 32-core absolute claim).
    SpeedupAtLeast {
        /// Workload label.
        workload: &'static str,
        /// System label.
        system: &'static str,
        /// Minimum speedup.
        min: f64,
    },
    /// `system`'s speedup stays below `max`.
    SpeedupBelow {
        /// Workload label.
        workload: &'static str,
        /// System label.
        system: &'static str,
        /// Maximum speedup.
        max: f64,
    },
}

/// Outcome of evaluating one check.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The dataset read.
    pub dataset: &'static str,
    /// The check's display name.
    pub name: &'static str,
    /// Did the claim hold?
    pub passed: bool,
    /// Human-readable evidence (measured values).
    pub detail: String,
}

fn speedup(r: &ExperimentRecord, workload: &str, system: &str) -> Result<f64, String> {
    r.speedup_of(workload, system)
        .ok_or_else(|| format!("no baselined run for {workload}/{system}"))
}

fn outcome(check: &Check, result: Result<(bool, String), String>) -> CheckOutcome {
    let (passed, detail) = match result {
        Ok((passed, detail)) => (passed, detail),
        Err(missing) => (false, missing),
    };
    CheckOutcome {
        dataset: check.dataset.name(),
        name: check.name,
        passed,
        detail,
    }
}

/// Evaluates one check against its dataset's record.
pub fn evaluate(check: &Check, r: &ExperimentRecord) -> CheckOutcome {
    let result = match &check.expect {
        Expect::Rescued {
            workload,
            winner,
            over,
            factor,
        } => (|| {
            let win = speedup(r, workload, winner)?;
            let mut best_other: f64 = 0.0;
            for s in *over {
                best_other = best_other.max(speedup(r, workload, s)?);
            }
            Ok((
                win > factor * best_other,
                format!("{winner} {win:.1}x vs best other {best_other:.1}x (need >{factor}x)"),
            ))
        })(),
        Expect::Beats {
            workload,
            winner,
            loser,
            factor,
        } => (|| {
            let win = speedup(r, workload, winner)?;
            let lose = speedup(r, workload, loser)?;
            Ok((
                win > factor * lose,
                format!("{winner} {win:.1}x vs {loser} {lose:.1}x (need >{factor}x)"),
            ))
        })(),
        Expect::NotRescued {
            workload,
            system,
            reference,
            factor,
        } => (|| {
            let sys = speedup(r, workload, system)?;
            let reference = speedup(r, workload, reference)?.max(1.0);
            Ok((
                sys < factor * reference,
                format!("{system} {sys:.1}x vs reference {reference:.1}x (must stay <{factor}x)"),
            ))
        })(),
        Expect::Insensitive {
            workload,
            systems,
            within,
        } => (|| {
            let mut lo = f64::INFINITY;
            let mut hi: f64 = 0.0;
            for s in *systems {
                let v = speedup(r, workload, s)?;
                lo = lo.min(v);
                hi = hi.max(v);
            }
            Ok((
                hi <= within * lo,
                format!("spread {lo:.1}x..{hi:.1}x (allowed ratio {within})"),
            ))
        })(),
        Expect::CommitsAgree { workload, systems } => (|| {
            let mut counts = Vec::new();
            for s in *systems {
                let run = r
                    .find(workload, s)
                    .ok_or_else(|| format!("no run for {workload}/{s}"))?;
                counts.push(run.report.protocol.commits);
            }
            let agree = counts.windows(2).all(|w| w[0] == w[1]);
            Ok((agree, format!("commit counts {counts:?}")))
        })(),
        Expect::AbortsAtMost {
            workload,
            system,
            max,
        } => (|| {
            let run = r
                .find(workload, system)
                .ok_or_else(|| format!("no run for {workload}/{system}"))?;
            let aborts = run.report.protocol.aborts();
            Ok((
                aborts <= *max,
                format!("{system} aborted {aborts} times (≤{max})"),
            ))
        })(),
        Expect::FewerAborts {
            workload,
            winner,
            loser,
        } => (|| {
            let win = r
                .find(workload, winner)
                .ok_or_else(|| format!("no run for {workload}/{winner}"))?
                .report
                .protocol
                .aborts();
            let lose = r
                .find(workload, loser)
                .ok_or_else(|| format!("no run for {workload}/{loser}"))?
                .report
                .protocol
                .aborts();
            Ok((
                win < lose,
                format!("{winner} {win} aborts vs {loser} {lose}"),
            ))
        })(),
        Expect::ConflictCollapses {
            workload,
            system,
            reference,
            factor,
        } => (|| {
            let sys = r
                .find(workload, system)
                .ok_or_else(|| format!("no run for {workload}/{system}"))?
                .report
                .breakdown()
                .conflict;
            let reference = r
                .find(workload, reference)
                .ok_or_else(|| format!("no run for {workload}/{reference}"))?
                .report
                .breakdown()
                .conflict;
            Ok((
                (sys as f64) < factor * reference as f64,
                format!("conflict cycles {sys} vs {reference} (must shrink below {factor}x)"),
            ))
        })(),
        Expect::StructureBudget {
            workload,
            blocks_tracked,
            private_stores,
            constraint_addrs,
            stall_pct,
        } => (|| {
            let run = r
                .find(workload, System::Retcon.label())
                .ok_or_else(|| format!("no RetCon run for {workload}"))?;
            let rs = run
                .report
                .retcon
                .as_ref()
                .ok_or_else(|| format!("{workload}: RetCon run lacks structure stats"))?;
            let ok = rs.max.blocks_tracked <= *blocks_tracked
                && rs.max.private_stores <= *private_stores
                && rs.max.constraint_addrs <= *constraint_addrs
                && rs.commit_stall_percent() < *stall_pct;
            Ok((
                ok,
                format!(
                    "max tracked {} (≤{blocks_tracked}), stores {} (≤{private_stores}), constraints {} (≤{constraint_addrs}), stall {:.1}% (<{stall_pct}%)",
                    rs.max.blocks_tracked,
                    rs.max.private_stores,
                    rs.max.constraint_addrs,
                    rs.commit_stall_percent()
                ),
            ))
        })(),
        Expect::DeltaWithin {
            workload,
            a,
            b,
            pct,
        } => (|| {
            let va = speedup(r, workload, a)?;
            let vb = speedup(r, workload, b)?;
            let delta = 100.0 * (vb - va).abs() / va;
            Ok((
                delta <= *pct,
                format!("{a} {va:.1}x vs {b} {vb:.1}x: |delta| {delta:.1}% (≤{pct}%)"),
            ))
        })(),
        Expect::SpeedupAtLeast {
            workload,
            system,
            min,
        } => (|| {
            let v = speedup(r, workload, system)?;
            Ok((v >= *min, format!("{system} {v:.1}x (need ≥{min})")))
        })(),
        Expect::SpeedupBelow {
            workload,
            system,
            max,
        } => (|| {
            let v = speedup(r, workload, system)?;
            Ok((v < *max, format!("{system} {v:.1}x (must stay <{max})")))
        })(),
    };
    outcome(check, result)
}

const RETCON: &str = "RetCon";
const EAGER: &str = "eager";
const LAZY_VB: &str = "lazy-vb";
const DATM: &str = "datm";
const COMPARED: &[&str] = &[EAGER, LAZY_VB];
const FIG2_SYSTEMS: &[&str] = &["RetCon", "datm", "eager-abort", "eager", "lazy"];

/// The Figure 2 checks: scale-free, so shared by full and quick modes.
fn fig2_checks() -> Vec<Check> {
    vec![
        Check {
            dataset: Dataset::Fig2,
            name: "fig2: every design commits the same transactions",
            expect: Expect::CommitsAgree {
                workload: "counter",
                systems: FIG2_SYSTEMS,
            },
        },
        Check {
            dataset: Dataset::Fig2,
            name: "fig2: RetCon runs the counter essentially abort-free",
            expect: Expect::AbortsAtMost {
                workload: "counter",
                system: RETCON,
                max: 4,
            },
        },
        Check {
            dataset: Dataset::Fig2,
            name: "fig2: DATM's forwarding beats eager-abort's livelock",
            expect: Expect::FewerAborts {
                workload: "counter",
                winner: DATM,
                loser: "eager-abort",
            },
        },
        Check {
            dataset: Dataset::Fig2,
            name: "fig2: RetCon beats DATM on aborts",
            expect: Expect::FewerAborts {
                workload: "counter",
                winner: RETCON,
                loser: DATM,
            },
        },
    ]
}

/// The rescue/insensitivity checks over a Figure 9-shaped record.
///
/// `rescued` lists the auxiliary-data workloads with the rescue factor
/// RETCON must clear over every other system — 2.0 across the board at
/// 32 cores, per-workload-calibrated at quick scale where the gap has
/// less room to open (genome-sz's eager baseline still reaches 6× on 8
/// cores, so RETCON's win there is real but narrow).
fn fig9_checks(rescued: &[(&'static str, f64)], workloads: &[&'static str]) -> Vec<Check> {
    let mut checks = Vec::new();
    for &(w, factor) in rescued {
        if !workloads.contains(&w) {
            continue;
        }
        checks.push(Check {
            dataset: Dataset::Fig9,
            name: "fig9: RetCon rescues the auxiliary-data workload",
            expect: Expect::Rescued {
                workload: w,
                winner: RETCON,
                over: COMPARED,
                factor,
            },
        });
        // DATM forwards values but cannot repair, so it must not match
        // RETCON on the auxiliary-data workloads either.
        checks.push(Check {
            dataset: Dataset::Fig9,
            name: "fig9: DATM forwarding alone does not rescue",
            expect: Expect::Beats {
                workload: w,
                winner: RETCON,
                loser: DATM,
                factor,
            },
        });
    }
    for w in ["intruder", "yada", "python"] {
        if !workloads.contains(&w) {
            continue;
        }
        checks.push(Check {
            dataset: Dataset::Fig9,
            name: "fig9: address-feeding workloads stay unrescued",
            expect: Expect::NotRescued {
                workload: w,
                system: RETCON,
                reference: EAGER,
                factor: 2.0,
            },
        });
    }
    for w in ["genome", "kmeans", "ssca2", "intruder_opt", "vacation_opt"] {
        if !workloads.contains(&w) {
            continue;
        }
        checks.push(Check {
            dataset: Dataset::Fig9,
            name: "fig9: conflict-free workloads are insensitive to the protocol",
            expect: Expect::Insensitive {
                workload: w,
                systems: &[EAGER, LAZY_VB, RETCON],
                within: 1.5,
            },
        });
    }
    if workloads.contains(&"vacation") {
        checks.push(Check {
            dataset: Dataset::Fig9,
            name: "fig9: value-based detection helps vacation",
            expect: Expect::Beats {
                workload: "vacation",
                winner: LAZY_VB,
                loser: EAGER,
                factor: 1.5,
            },
        });
    }
    checks
}

/// The full-scale (32-core) expectation table.
pub fn full_checks() -> Vec<Check> {
    let mut checks = Vec::new();
    // Figure 1 — the bimodal baseline that motivates the paper: some
    // workloads near-linear, the conflict-bound ones at the bottom.
    for (w, min) in [("genome", 15.0), ("kmeans", 10.0)] {
        checks.push(Check {
            dataset: Dataset::Fig1,
            name: "fig1: scaling workloads stay near-linear under eager",
            expect: Expect::SpeedupAtLeast {
                workload: w,
                system: EAGER,
                min,
            },
        });
    }
    for (w, max) in [("python", 4.0), ("intruder", 5.0), ("yada", 10.0)] {
        checks.push(Check {
            dataset: Dataset::Fig1,
            name: "fig1: conflict-bound workloads stay at the bottom",
            expect: Expect::SpeedupBelow {
                workload: w,
                system: EAGER,
                max,
            },
        });
    }
    checks.extend(fig2_checks());
    let all_fig9: Vec<&'static str> = Workload::fig9().iter().map(|w| w.label()).collect();
    checks.extend(fig9_checks(
        &[
            ("genome-sz", 2.0),
            ("intruder_opt-sz", 2.0),
            ("vacation_opt-sz", 2.0),
            ("python_opt", 2.0),
        ],
        &all_fig9,
    ));
    // Figure 10 — repair collapses the conflict component on the
    // auxiliary-data workloads.
    for w in ["genome-sz", "vacation_opt-sz", "python_opt"] {
        checks.push(Check {
            dataset: Dataset::Fig10,
            name: "fig10: RetCon collapses the conflict component",
            expect: Expect::ConflictCollapses {
                workload: w,
                system: RETCON,
                reference: EAGER,
                factor: 0.5,
            },
        });
    }
    // Table 3 — the hardware budget of Table 1 suffices.
    for w in ["genome-sz", "python_opt"] {
        checks.push(Check {
            dataset: Dataset::Table3,
            name: "table3: structures stay inside the Table 1 budget",
            expect: Expect::StructureBudget {
                workload: w,
                blocks_tracked: 16,
                private_stores: 32,
                constraint_addrs: 24,
                stall_pct: 35.0,
            },
        });
    }
    // §5.3 — idealizing RETCON does not significantly change results.
    for w in ["genome-sz", "python_opt", "vacation_opt-sz", "yada"] {
        checks.push(Check {
            dataset: Dataset::AblationIdeal,
            name: "ablation_ideal: idealization does not significantly matter",
            expect: Expect::DeltaWithin {
                workload: w,
                a: RETCON,
                b: "RetCon-ideal",
                pct: 30.0,
            },
        });
    }
    checks
}

/// The workloads the quick fig9 slice runs.
pub fn quick_workloads() -> [Workload; 4] {
    [
        Workload::Genome { resizable: false },
        Workload::Genome { resizable: true },
        Workload::Python { optimized: true },
        Workload::Intruder {
            optimized: false,
            resizable: false,
        },
    ]
}

/// The reduced-scale expectation table for `--quick` (CI).
pub fn quick_checks() -> Vec<Check> {
    let mut checks = fig2_checks();
    let quick: Vec<&'static str> = quick_workloads().iter().map(|w| w.label()).collect();
    // Measured at 8 cores (seed 42): genome-sz RetCon 7.4× vs eager 6.0×
    // (ratio 1.23) and python_opt 6.6× vs lazy-vb 1.9× (ratio 3.4) — so
    // the quick factors are 1.15 and 2.0 with real margin.
    checks.extend(fig9_checks(
        &[("genome-sz", 1.15), ("python_opt", 2.0)],
        &quick,
    ));
    checks
}

/// Builds the reduced-scale records `--quick` evaluates: the full fig2
/// matrix (2 cores — it is the paper's own micro-schedule scale) plus a
/// [`QUICK_CORES`]-core slice of fig9.
///
/// # Errors
///
/// Propagates the first [`SimError`].
pub fn quick_records(workers: usize) -> Result<BTreeMap<String, ExperimentRecord>, SimError> {
    let mut records = BTreeMap::new();
    records.insert(
        Dataset::Fig2.name().to_string(),
        Dataset::Fig2.collect(workers)?,
    );
    let mut jobs = Vec::new();
    for w in quick_workloads() {
        jobs.push(Job::new(w, System::Eager, 1, SEED));
        for s in System::FIG9 {
            jobs.push(Job::new(w, s, QUICK_CORES, SEED));
        }
    }
    let mut runs = run_jobs(&jobs, workers)?;
    crate::datasets::wire_baselines(&mut runs);
    records.insert(
        Dataset::Fig9.name().to_string(),
        ExperimentRecord {
            name: Dataset::Fig9.name().to_string(),
            seed: SEED,
            meta: vec![("quick".to_string(), QUICK_CORES.to_string())],
            runs,
        },
    );
    Ok(records)
}

/// Evaluates `checks` against `records`; checks whose dataset is missing
/// fail with a "record not available" outcome.
pub fn run_checks(
    checks: &[Check],
    records: &BTreeMap<String, ExperimentRecord>,
) -> Vec<CheckOutcome> {
    checks
        .iter()
        .map(|check| match records.get(check.dataset.name()) {
            Some(record) => evaluate(check, record),
            None => CheckOutcome {
                dataset: check.dataset.name(),
                name: check.name,
                passed: false,
                detail: "record not available".to_string(),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_checks_pass_on_fresh_records() {
        let records = quick_records(4).unwrap();
        let outcomes = run_checks(&quick_checks(), &records);
        assert!(!outcomes.is_empty());
        for o in &outcomes {
            assert!(o.passed, "{} [{}]: {}", o.name, o.dataset, o.detail);
        }
    }

    #[test]
    fn missing_records_fail_closed() {
        let outcomes = run_checks(&quick_checks(), &BTreeMap::new());
        assert!(outcomes.iter().all(|o| !o.passed));
        assert!(outcomes[0].detail.contains("not available"));
    }

    #[test]
    fn check_tables_are_nonempty_and_well_formed() {
        for check in full_checks().iter().chain(quick_checks().iter()) {
            assert!(!check.name.is_empty());
            assert!(!check.dataset.name().is_empty());
        }
        assert!(full_checks().len() >= 15);
        assert!(quick_checks().len() >= 8);
    }
}
