//! Table 2: the workload inventory, with the model parameters actually used.

use retcon_bench::{print_header, SEED};
use retcon_workloads::Workload;

fn main() {
    print_header("Table 2: workloads (model inventory)", "");
    let descriptions: &[(&str, &str)] = &[
        (
            "counter",
            "Figure 2 micro: two increments of one shared counter per tx",
        ),
        ("genome", "hashtable segment inserts, fixed-size table"),
        (
            "genome-sz",
            "variant with resizable table (shared size-field increment per insert)",
        ),
        (
            "intruder",
            "shared in/out queues feed addresses + tree-rebalance hot words",
        ),
        ("intruder_opt", "thread-private queues, fixed hashtable map"),
        (
            "intruder_opt-sz",
            "optimized variant with resizable (size-tracked) map",
        ),
        (
            "kmeans",
            "cluster-centre accumulation with untrackable (multiply) updates",
        ),
        (
            "labyrinth",
            "pre-tx grid copy; long variable-length routing transactions",
        ),
        (
            "ssca2",
            "tiny transactions, scattered graph updates (coherence-bound)",
        ),
        (
            "vacation",
            "read-mostly reservations + tree-rebalance hot words",
        ),
        ("vacation_opt", "hashtable tables, no rebalancing"),
        (
            "vacation_opt-sz",
            "optimized variant with size-tracked orders table",
        ),
        (
            "yada",
            "pointer-chasing cavity refinement (loaded values feed addresses)",
        ),
        (
            "python",
            "GIL elision: hot refcounts + shared address-feeding free list",
        ),
        (
            "python_opt",
            "interpreter globals made thread-private; refcounts remain",
        ),
    ];
    println!("{:<18} model", "workload");
    for (name, desc) in descriptions {
        println!("{name:<18} {desc}");
    }
    println!();
    println!("Per-workload static footprint (one 32-core build, seed {SEED}):");
    println!(
        "{:<18} {:>9} {:>12} {:>12}",
        "workload", "programs", "instr total", "tape words"
    );
    let mut all = Workload::fig9();
    all.insert(0, Workload::Counter);
    for w in all {
        let spec = w.build(32, SEED);
        let instr: usize = spec.programs.iter().map(|p| p.len()).sum();
        let tape: usize = spec.tapes.iter().map(|t| t.len()).sum();
        println!(
            "{:<18} {:>9} {:>12} {:>12}",
            w.label(),
            spec.programs.len(),
            instr,
            tape
        );
    }
}
