//! The transaction event schema and the tracer seam contract.
//!
//! Events are fixed-width (`at`/`arg`/`core`/`kind`, 24 bytes) so an
//! enabled tracer can preallocate its entire buffer up front and the
//! hot loop never allocates. `arg` is one kind-specific payload word —
//! enough to answer "which block / how long / how many" without
//! growing the event.

/// What happened. The discriminants are the wire/byte encoding and are
/// append-only: new kinds get new numbers, existing numbers never move
/// (hash-pinned event streams depend on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A transaction began. `arg` = 0.
    TxBegin = 0,
    /// A transaction committed. `arg` = commit latency in cycles (the
    /// RETCON commit-time reacquire/replay cost; 0 under eager systems).
    Commit = 1,
    /// The core stalled. `arg` = conflicting block id, or 0 for a
    /// commit-time stall.
    Stall = 2,
    /// A conflicting access was observed on the aborting path. `arg` =
    /// block id.
    Conflict = 3,
    /// The transaction aborted. `arg` = cause: 0 access conflict,
    /// 1 commit-time, 2 remote (another core's action killed it).
    Abort = 4,
    /// RETCON repaired instead of aborting: the commit replayed with
    /// symbolic register updates. `arg` = number of registers repaired.
    Repair = 5,
    /// A stall-retry storm was fast-forwarded analytically. `arg` =
    /// number of retries charged without execution.
    StormFf = 6,
    /// A sharded run's merge decision. `core` = shard index, `arg` =
    /// 0 merged (footprints disjoint), 1 overlap (serial fallback).
    ShardMerge = 7,
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; 8] = [
        EventKind::TxBegin,
        EventKind::Commit,
        EventKind::Stall,
        EventKind::Conflict,
        EventKind::Abort,
        EventKind::Repair,
        EventKind::StormFf,
        EventKind::ShardMerge,
    ];

    /// Stable display name (the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TxBegin => "tx_begin",
            EventKind::Commit => "commit",
            EventKind::Stall => "stall",
            EventKind::Conflict => "conflict",
            EventKind::Abort => "abort",
            EventKind::Repair => "repair",
            EventKind::StormFf => "storm_ff",
            EventKind::ShardMerge => "shard_merge",
        }
    }

    /// The kind with byte encoding `v`, if any.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }
}

/// One traced event, fixed-width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event happened at.
    pub at: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub arg: u64,
    /// Core (or shard, for [`EventKind::ShardMerge`]) the event belongs
    /// to.
    pub core: u16,
    /// Byte-encoded [`EventKind`].
    pub kind: u8,
}

impl TraceEvent {
    /// Builds an event, clamping `core` into the `u16` field (the
    /// simulator tops out at 1024 cores, far below the clamp).
    pub fn new(core: usize, kind: EventKind, at: u64, arg: u64) -> TraceEvent {
        TraceEvent {
            at,
            arg,
            core: core.min(u16::MAX as usize) as u16,
            kind: kind as u8,
        }
    }

    /// The event's kind (always valid for events built via
    /// [`TraceEvent::new`]).
    pub fn event_kind(&self) -> Option<EventKind> {
        EventKind::from_u8(self.kind)
    }
}

/// The tracer seam: anything that can record transaction events.
///
/// The contract every implementation must honor: `record` takes what the
/// simulator *already decided* and stores it somewhere the simulator
/// never reads — a tracer cannot feed anything back. That is what makes
/// "tracing on vs off" byte-identical by construction.
pub trait Tracer {
    /// Records one event.
    fn record(&mut self, core: usize, kind: EventKind, at: u64, arg: u64);
}

/// The disabled tracer: a zero-sized no-op that monomorphizes away
/// entirely — code generic over [`Tracer`] instantiated at `NoTrace`
/// compiles to the untraced code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTrace;

impl Tracer for NoTrace {
    #[inline(always)]
    fn record(&mut self, _core: usize, _kind: EventKind, _at: u64, _arg: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_encoding_round_trips_and_is_pinned() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*k as u8, i as u8, "discriminants are append-only");
            assert_eq!(EventKind::from_u8(i as u8), Some(*k));
        }
        assert_eq!(EventKind::from_u8(8), None);
    }

    #[test]
    fn event_is_fixed_width() {
        assert_eq!(std::mem::size_of::<TraceEvent>(), 24);
    }

    #[test]
    fn core_clamps_into_u16() {
        let e = TraceEvent::new(1 << 20, EventKind::TxBegin, 1, 0);
        assert_eq!(e.core, u16::MAX);
        assert_eq!(e.event_kind(), Some(EventKind::TxBegin));
    }
}
