//! A blocking client for the daemon's line protocol.
//!
//! Used by `examples/serve_client.rs`, the root `tests/serve.rs` suite,
//! and the CI smoke job. One [`Client`] owns one connection; a sweep
//! call blocks until its `done` line, collecting streamed records back
//! into **canonical index order** so the returned record vector is
//! byte-identical to the offline runner's output for the same matrix.
//!
//! ## Resilience
//!
//! [`ClientConfig`] adds connect/read timeouts and transport-level
//! retries with exponential backoff and seeded jitter. A failed sweep
//! **reconnects and reissues the whole request** — provably safe because
//! content-addressed run keys are natural idempotency keys: every
//! re-requested key either hits the store (the first attempt's execution
//! finished and was kept) or joins the still-in-flight execution, so the
//! daemon's `executed` count is unchanged by any number of retries.
//! Server-side *rejections* (error replies, failed runs) are never
//! retried — only transport faults are.

use crate::proto::{DoneSummary, Request, Response, SweepRequest};
use retcon_lab::RunRecord;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connection and retry policy for a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Timeout for establishing the TCP connection.
    pub connect_timeout: Option<Duration>,
    /// Per-read socket timeout (`None` blocks indefinitely — sweeps wait
    /// on real simulations, so the default is no read deadline).
    pub read_timeout: Option<Duration>,
    /// Transport-failure retries per sweep (0 = fail fast).
    pub retries: u32,
    /// Base backoff before the first retry; doubles per attempt, plus
    /// seeded jitter in `[0, base)`.
    pub backoff: Duration,
    /// Jitter seed — deterministic, so a fleet of clients configured
    /// with distinct seeds desynchronizes instead of thundering back in
    /// lockstep, and a test replays exactly.
    pub retry_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: None,
            retries: 0,
            backoff: Duration::from_millis(50),
            retry_seed: 0x5eed,
        }
    }
}

/// SplitMix64 — the repo's standard small deterministic generator.
fn splitmix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How one sweep attempt failed: transport faults are retryable (the
/// request never completed), rejections are authoritative answers.
enum SweepError {
    Transport(String),
    Rejected(String),
}

/// A completed sweep: records in canonical order plus dedup accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Run records, ordered by canonical sweep index (workload-major,
    /// then system, then cores, then seed).
    pub records: Vec<RunRecord>,
    /// Per-record cache flags, index-aligned with `records`.
    pub cached: Vec<bool>,
    /// Runs served from the result store.
    pub hits: u64,
    /// Runs joined onto executions already in flight.
    pub joined: u64,
    /// Runs this sweep caused to execute.
    pub misses: u64,
}

impl SweepResult {
    /// Fraction of runs served without a new execution (store hits plus
    /// single-flight joins), in `0.0..=1.0`.
    pub fn hit_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        (self.hits + self.joined) as f64 / self.records.len() as f64
    }
}

/// A blocking connection to a `retcon-serve` daemon.
#[derive(Debug)]
pub struct Client {
    addr: String,
    cfg: ClientConfig,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (`host:port`) with the default
    /// [`ClientConfig`] (10 s connect timeout, no retries).
    ///
    /// # Errors
    ///
    /// Connection I/O errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with an explicit timeout/retry policy.
    ///
    /// # Errors
    ///
    /// Address-resolution or connection I/O errors (after the connect
    /// timeout, if one is set).
    pub fn connect_with(addr: &str, cfg: ClientConfig) -> std::io::Result<Client> {
        let stream = Client::dial(addr, &cfg)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            addr: addr.to_string(),
            cfg,
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn dial(addr: &str, cfg: &ClientConfig) -> std::io::Result<TcpStream> {
        let stream = match cfg.connect_timeout {
            Some(timeout) => {
                let mut last = None;
                let mut connected = None;
                for sock in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sock, timeout) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match connected {
                    Some(s) => s,
                    None => {
                        return Err(last.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to no sockets",
                            )
                        }))
                    }
                }
            }
            None => TcpStream::connect(addr)?,
        };
        stream.set_read_timeout(cfg.read_timeout)?;
        Ok(stream)
    }

    /// Tears down the socket and dials the daemon again with the same
    /// policy.
    fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = Client::dial(&self.addr, &self.cfg)?;
        self.writer = stream.try_clone()?;
        self.reader = BufReader::new(stream);
        Ok(())
    }

    /// Backoff before retry `attempt` (1-based): exponential in the base
    /// with seeded jitter, salted by the sweep id so concurrent sweeps
    /// from one config desynchronize too.
    fn backoff_delay(&self, attempt: u32, salt: u64) -> Duration {
        let base = self.cfg.backoff.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << (attempt - 1).min(16));
        let jitter = if base == 0 {
            0
        } else {
            splitmix(self.cfg.retry_seed ^ salt ^ u64::from(attempt)) % base
        };
        Duration::from_millis(exp + jitter)
    }

    fn send(&mut self, req: &Request) -> Result<(), String> {
        let line = req.to_line();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    fn recv(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("recv failed: {e}"))?;
        if n == 0 {
            return Err("connection closed by daemon".to_string());
        }
        Response::parse_line(line.trim_end())
    }

    /// Runs one sweep and blocks until its `done` line, retrying
    /// transport failures per the [`ClientConfig`]: reconnect, back off
    /// (exponential + seeded jitter), and reissue the whole sweep.
    /// Reissue is idempotent — see the module docs. Rejections and
    /// per-run errors are returned immediately, never retried.
    ///
    /// # Errors
    ///
    /// I/O failures (after retries are exhausted), protocol violations, a
    /// request-level rejection, any per-run error, or a record set that
    /// does not cover every index.
    pub fn sweep(&mut self, req: &SweepRequest) -> Result<SweepResult, String> {
        let mut last = match self.sweep_once(req) {
            Ok(result) => return Ok(result),
            Err(SweepError::Rejected(message)) => return Err(message),
            Err(SweepError::Transport(message)) => message,
        };
        for attempt in 1..=self.cfg.retries {
            std::thread::sleep(self.backoff_delay(attempt, req.id));
            if let Err(e) = self.reconnect() {
                last = format!("reconnect failed: {e}");
                continue;
            }
            match self.sweep_once(req) {
                Ok(result) => return Ok(result),
                Err(SweepError::Rejected(message)) => return Err(message),
                Err(SweepError::Transport(message)) => last = message,
            }
        }
        Err(format!(
            "sweep {} failed after {} attempts: {last}",
            req.id,
            u64::from(self.cfg.retries) + 1
        ))
    }

    /// One attempt: send, then collect records until `done`.
    fn sweep_once(&mut self, req: &SweepRequest) -> Result<SweepResult, SweepError> {
        self.send(&Request::Sweep(req.clone()))
            .map_err(SweepError::Transport)?;
        let runs = req.explode().len();
        let mut slots: Vec<Option<(RunRecord, bool)>> = vec![None; runs];
        let summary: DoneSummary = loop {
            match self.recv().map_err(SweepError::Transport)? {
                Response::Record {
                    id,
                    index,
                    cached,
                    run,
                } => {
                    if id != req.id {
                        return Err(SweepError::Transport(format!(
                            "record for unexpected sweep id {id}"
                        )));
                    }
                    let slot = slots.get_mut(index as usize).ok_or_else(|| {
                        SweepError::Transport(format!("record index {index} out of range"))
                    })?;
                    if slot.replace((*run, cached)).is_some() {
                        return Err(SweepError::Transport(format!(
                            "duplicate record for index {index}"
                        )));
                    }
                }
                Response::Done(summary) if summary.id == req.id => break summary,
                Response::Done(summary) => {
                    return Err(SweepError::Transport(format!(
                        "done for unexpected sweep id {}",
                        summary.id
                    )));
                }
                Response::Error { id, index, message } => {
                    return Err(SweepError::Rejected(match (id, index) {
                        (Some(id), Some(index)) => {
                            format!("sweep {id} run {index} failed: {message}")
                        }
                        (Some(id), None) => format!("sweep {id} rejected: {message}"),
                        _ => format!("request failed: {message}"),
                    }));
                }
                other => {
                    return Err(SweepError::Transport(format!(
                        "unexpected response: {other:?}"
                    )))
                }
            }
        };
        if summary.errors > 0 {
            return Err(SweepError::Rejected(format!(
                "{} runs failed",
                summary.errors
            )));
        }
        let mut records = Vec::with_capacity(runs);
        let mut cached = Vec::with_capacity(runs);
        for (index, slot) in slots.into_iter().enumerate() {
            let (run, was_cached) =
                slot.ok_or_else(|| SweepError::Transport(format!("missing record {index}")))?;
            records.push(run);
            cached.push(was_cached);
        }
        Ok(SweepResult {
            records,
            cached,
            hits: summary.hits,
            joined: summary.joined,
            misses: summary.misses,
        })
    }

    /// Fetches service counters.
    ///
    /// # Errors
    ///
    /// I/O failures or protocol violations.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, String> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(fields) => Ok(fields),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Fetches the daemon's metrics registry as a Prometheus text
    /// exposition document.
    ///
    /// # Errors
    ///
    /// I/O failures or protocol violations.
    pub fn metrics(&mut self) -> Result<String, String> {
        self.send(&Request::Metrics)?;
        match self.recv()? {
            Response::Metrics(text) => Ok(text),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Asks the daemon to drain and stop; returns its acknowledgement.
    ///
    /// # Errors
    ///
    /// I/O failures or protocol violations.
    pub fn shutdown(&mut self) -> Result<String, String> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::Ok(message) => Ok(message),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }
}
