//! Memory-system statistics.

/// Per-core memory-access counters, used by the simulator's reports and by
/// tests asserting cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Total word accesses issued.
    pub accesses: u64,
    /// Accesses that hit in the L1.
    pub l1_hits: u64,
    /// Accesses that missed L1 but hit the private L2.
    pub l2_hits: u64,
    /// Accesses serviced by the directory (remote forward or DRAM).
    pub misses: u64,
    /// Upgrade misses (had a shared copy, needed exclusive).
    pub upgrades: u64,
    /// Invalidations this core sent to others.
    pub invalidations_sent: u64,
    /// Invalidations this core received.
    pub invalidations_received: u64,
    /// Speculative blocks whose permissions overflowed into the
    /// permissions-only cache (evicted from L1/L2 while speculative).
    pub spec_overflows: u64,
}

impl MemStats {
    /// Sum of hits and misses — should equal `accesses`.
    pub fn classified(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.misses + self.upgrades
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = MemStats::default();
        assert_eq!(s.accesses, 0);
        assert_eq!(s.classified(), 0);
    }

    #[test]
    fn classified_sums_buckets() {
        let s = MemStats {
            accesses: 10,
            l1_hits: 4,
            l2_hits: 3,
            misses: 2,
            upgrades: 1,
            ..Default::default()
        };
        assert_eq!(s.classified(), 10);
    }
}
