//! Functional invariants of every workload under every evaluated system.
//!
//! These are the end-to-end repair-correctness checks: whatever the timing
//! results, the *architectural outcome* of each workload must be exactly
//! what a serial execution would produce (for quantities that are
//! interleaving-independent).

use retcon_isa::Addr;
use retcon_sim::{Machine, SimConfig};
use retcon_workloads::{System, Workload, WorkloadSpec};

const CORES: usize = 8;
const SEED: u64 = 1234;

fn run_machine(spec: &WorkloadSpec, system: System) -> Machine {
    let mut machine = Machine::new(
        SimConfig::with_cores(CORES),
        system.protocol(CORES),
        spec.programs.clone(),
    );
    for (i, tape) in spec.tapes.iter().enumerate() {
        machine.set_tape(i, tape.clone());
    }
    for &(a, v) in &spec.init {
        machine.init_word(a, v);
    }
    machine.run().expect("workload runs to completion");
    machine
}

const SYSTEMS: [System; 4] = [
    System::Eager,
    System::LazyVb,
    System::Retcon,
    System::RetconIdeal,
];

#[test]
fn genome_sz_size_field_is_exact() {
    let spec = Workload::Genome { resizable: true }.build(CORES, SEED);
    // Size field is the first allocation (word 0); total inserts = sum of
    // tape lengths.
    let total: u64 = spec.tapes.iter().map(|t| t.len() as u64).sum();
    for system in SYSTEMS {
        let machine = run_machine(&spec, system);
        assert_eq!(
            machine.mem().read_word(Addr(0)),
            total,
            "size field wrong under {}",
            system.label()
        );
    }
}

#[test]
fn genome_table_contents_identical_across_systems() {
    // Bucket-by-bucket, the hashtable must hold the same multiset of keys
    // under every system (inserts commute only per bucket, and bucket
    // contents are order-dependent — but each core's keys are fixed, so the
    // *set* of stored keys must match the sequential outcome).
    let spec = Workload::Genome { resizable: false }.build(CORES, SEED);
    let mut reference: Option<Vec<(u64, u64)>> = None;
    for system in SYSTEMS {
        let machine = run_machine(&spec, system);
        // `iter_sorted` is the memory's sorted-dump helper: address order
        // without a collect-then-sort over every word.
        let words: Vec<(u64, u64)> = machine
            .mem()
            .memory()
            .iter_sorted()
            .map(|(a, v)| (a.0, v))
            .collect();
        // Compare only the multiset of stored values (slot order within a
        // bucket is interleaving-dependent).
        let mut values: Vec<u64> = words.iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        match &reference {
            None => reference = Some(values.into_iter().map(|v| (0, v)).collect()),
            Some(r) => {
                let rv: Vec<u64> = r.iter().map(|&(_, v)| v).collect();
                assert_eq!(values, rv, "table contents differ under {}", system.label());
            }
        }
    }
}

#[test]
fn intruder_base_processes_every_packet() {
    let spec = Workload::Intruder {
        optimized: false,
        resizable: false,
    }
    .build(CORES, SEED);
    let total: u64 = spec.tapes.iter().map(|t| t.len() as u64).sum();
    for system in SYSTEMS {
        let machine = run_machine(&spec, system);
        // in_head (allocated right after the size word) counts dequeues;
        // out_tail counts enqueues. Both must equal the packet count.
        let in_head = machine.mem().read_word(Addr(8));
        assert_eq!(in_head, total, "dequeues wrong under {}", system.label());
    }
}

#[test]
fn vacation_inventory_balances() {
    for (optimized, resizable) in [(false, false), (true, false), (true, true)] {
        let spec = Workload::Vacation {
            optimized,
            resizable,
        }
        .build(CORES, SEED);
        let total_txs: u64 = spec.tapes.iter().map(|t| t.len() as u64).sum();
        for system in SYSTEMS {
            let machine = run_machine(&spec, system);
            let mut reserved = 0u64;
            for &(a, init_v) in &spec.init {
                let now = machine.mem().read_word(a);
                assert!(
                    now <= init_v,
                    "availability increased under {}",
                    system.label()
                );
                reserved += init_v - now;
            }
            assert_eq!(
                reserved,
                total_txs,
                "reservations wrong under {} ({})",
                system.label(),
                spec.name
            );
        }
    }
}

#[test]
fn ssca2_degree_sum_matches_edges() {
    let spec = Workload::Ssca2.build(CORES, SEED);
    let total_endpoint_updates: u64 = spec.tapes.iter().map(|t| t.len() as u64).sum();
    for system in SYSTEMS {
        let machine = run_machine(&spec, system);
        let sum: u64 = machine.mem().memory().iter().map(|(_, v)| v).sum();
        assert_eq!(
            sum,
            total_endpoint_updates,
            "degree sum wrong under {}",
            system.label()
        );
    }
}

#[test]
fn python_refcount_sum_is_conserved() {
    for optimized in [false, true] {
        let spec = Workload::Python { optimized }.build(CORES, SEED);
        let expected: u64 = spec.init.iter().map(|&(_, v)| v).sum();
        for system in SYSTEMS {
            let machine = run_machine(&spec, system);
            // Only count the refcount words (the free-list pointer and pool
            // words are also in memory for the base variant).
            let actual: u64 = spec
                .init
                .iter()
                .map(|&(a, _)| machine.mem().read_word(a))
                .sum();
            assert_eq!(
                actual,
                expected,
                "refcount sum wrong under {} (optimized={optimized})",
                system.label()
            );
        }
    }
}

#[test]
fn kmeans_point_counts_are_exact() {
    let spec = Workload::Kmeans.build(CORES, SEED);
    let total_points: u64 = spec.tapes.iter().map(|t| t.len() as u64).sum();
    for system in SYSTEMS {
        let machine = run_machine(&spec, system);
        // Word 0 of each cluster block is the point count.
        let sum: u64 = (0..256).map(|c| machine.mem().read_word(Addr(c * 8))).sum();
        assert_eq!(
            sum,
            total_points,
            "cluster counts wrong under {}",
            system.label()
        );
    }
}

#[test]
fn every_workload_completes_under_every_fig9_system() {
    for w in Workload::fig9() {
        let spec = w.build(4, SEED);
        for system in System::FIG9 {
            let mut machine = Machine::new(
                SimConfig::with_cores(4),
                system.protocol(4),
                spec.programs.clone(),
            );
            for (i, tape) in spec.tapes.iter().enumerate() {
                machine.set_tape(i, tape.clone());
            }
            for &(a, v) in &spec.init {
                machine.init_word(a, v);
            }
            let report = machine.run().expect("completes");
            assert!(
                report.protocol.commits > 0,
                "{} under {}",
                w.label(),
                system.label()
            );
            // Accounting invariant: per-core buckets cover the whole run.
            for core in &report.per_core {
                assert_eq!(core.breakdown.total(), core.finished_at);
            }
        }
    }
}
