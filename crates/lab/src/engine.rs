//! The reusable experiment engine shared by the offline lab and the
//! `retcon-serve` daemon.
//!
//! PRs 2–6 built the hard parts of a serving stack inside the lab run
//! path: byte-stable records, a deterministic job-parallel runner, and a
//! cross-dataset report cache. This module lifts those pieces behind a
//! small, shareable surface:
//!
//! * [`RunKey`] — the simulation inputs a report is a pure function of,
//!   with a **canonical byte encoding** and a stable **content hash**
//!   (built on [`retcon_sim::canon`]). The invariant the test suite
//!   pins: keys with equal canonical bytes produce byte-identical
//!   records, and the hash is a function of nothing but those bytes.
//! * [`SimCache`] — the cache seam the runner executes through. The
//!   lab's in-memory [`ReportCache`] and the daemon's capacity-bounded
//!   [`ResultStore`] both implement it, so offline `all` and the server
//!   share one dedup implementation (a hit returns exactly what a fresh
//!   run would — simulations are deterministic, so caching cannot change
//!   output).
//! * [`simulate`] / [`record_for`] — the pure execution and
//!   record-assembly functions both consumers call.

use crate::record::RunRecord;
use retcon::RetconConfig;
use retcon_htm::{AnyProtocol, RetconTm};
use retcon_sim::canon::Canon;
use retcon_sim::{SimConfig, SimError, SimReport};
use retcon_workloads::{run_spec_with, System, Workload};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The simulation inputs one report is a pure function of.
///
/// This is the unit the serving stack deduplicates on: two requests whose
/// keys canonicalize to the same bytes are one simulation. Display-only
/// context (knob labels, sequential baselines) is deliberately *not* part
/// of the key — see [`crate::runner::Job`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Workload to build.
    pub workload: Workload,
    /// System to run it under.
    pub system: System,
    /// RETCON configuration override (structure-size sweeps); `None`
    /// runs `system`'s default protocol.
    pub cfg: Option<RetconConfig>,
    /// Core count.
    pub cores: usize,
    /// Workload-build seed.
    pub seed: u64,
}

impl RunKey {
    /// A plain run of `workload` under `system`.
    pub fn new(workload: Workload, system: System, cores: usize, seed: u64) -> RunKey {
        RunKey {
            workload,
            system,
            cfg: None,
            cores,
            seed,
        }
    }

    /// The machine configuration this key runs under (the default
    /// Table 1 machine at the key's core count; the lab has never varied
    /// the other knobs, but they are part of the canonical encoding so a
    /// future sweep cannot silently collide).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::with_cores(self.cores)
    }

    /// The key with an explicit-but-default RETCON config normalized
    /// away: `System::Retcon` with `cfg: Some(RetconConfig::default())`
    /// runs the exact same simulation as `cfg: None`, so both forms must
    /// canonicalize (and therefore hash) identically.
    fn normalized_cfg(&self) -> Option<&RetconConfig> {
        match &self.cfg {
            Some(cfg) if self.system == System::Retcon && *cfg == RetconConfig::default() => None,
            other => other.as_ref(),
        }
    }

    /// Writes the key's canonical byte encoding: a versioned tag, the
    /// workload and system labels, the (normalized) RETCON config, the
    /// seed, and the full machine configuration.
    pub fn canonical_encode(&self, c: &mut Canon) {
        c.tag("runkey-v1");
        c.str(self.workload.label());
        c.str(self.system.label());
        match self.normalized_cfg() {
            None => c.bool(false),
            Some(cfg) => {
                c.bool(true);
                c.tag("retconconfig-v1");
                c.usize(cfg.ivb_capacity);
                c.usize(cfg.constraint_capacity);
                c.usize(cfg.ssb_capacity);
                c.bool(cfg.unlimited_state);
                c.bool(cfg.parallel_reacquire);
                c.bool(cfg.free_commit_stores);
                c.u32(cfg.violation_backoff);
                c.u32(cfg.initial_threshold);
            }
        }
        c.u64(self.seed);
        self.sim_config().canonical_encode(c);
    }

    /// The key's canonical bytes (a fresh stream, encoded).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut c = Canon::new();
        self.canonical_encode(&mut c);
        c.finish()
    }

    /// The key's 128-bit content hash — the address of its report in a
    /// [`ResultStore`]. A pure function of [`RunKey::canonical_bytes`].
    pub fn content_hash(&self) -> u128 {
        let mut c = Canon::new();
        self.canonical_encode(&mut c);
        c.content_hash()
    }
}

/// Runs the simulation a key describes (no caching). Pure: same key,
/// same report, byte for byte.
///
/// # Errors
///
/// Propagates [`SimError`] (cycle-limit or validation failures — both
/// indicate workload bugs, so callers treat them as fatal).
pub fn simulate(key: &RunKey) -> Result<SimReport, SimError> {
    let spec = key.workload.build(key.cores, key.seed);
    let protocol: AnyProtocol = match key.cfg {
        Some(cfg) => RetconTm::new(key.cores, cfg).into(),
        None => key.system.protocol(key.cores),
    };
    run_spec_with(&spec, protocol, key.cores)
}

/// Assembles the record a key + report pair serializes as. Knob labels
/// and sequential baselines are presentation concerns layered on top by
/// the lab's dataset assembly; the serving stack emits records exactly in
/// this form, which is why a served sweep is byte-identical to
/// `run_jobs` over the same keys.
pub fn record_for(key: &RunKey, report: SimReport) -> RunRecord {
    RunRecord {
        workload: key.workload.label().to_string(),
        system: key.system.label().to_string(),
        cores: key.cores as u64,
        seed: key.seed,
        knobs: Vec::new(),
        seq_cycles: 0,
        report,
    }
}

/// The cache seam the runner executes through.
///
/// Implementations must be position-independent (a `lookup` hit returns
/// exactly what [`simulate`] would — deterministic simulations make this
/// free) and thread-safe (the runner's workers and the daemon's pool
/// share one instance).
pub trait SimCache: Sync {
    /// The cached report for `key`, if present.
    fn lookup(&self, key: &RunKey) -> Option<SimReport>;
    /// Stores `report` for `key`. `cost_micros` is the wall-clock the
    /// simulation took — cost-aware stores use it to bias eviction.
    fn insert(&self, key: &RunKey, report: &SimReport, cost_micros: u64);
}

/// The lab's unbounded in-memory memo, shareable across datasets:
/// `fig10`'s job list is a strict subset of `fig9`'s at-scale runs, and
/// `ablation_ideal` repeats `fig9`'s baselines, so `retcon-lab -- all` /
/// `check` would otherwise recompute byte-identical reports.
///
/// Caching cannot change output: simulations are deterministic, so a hit
/// returns exactly what a fresh run would (two workers racing on the same
/// key both compute the same report; last insert wins, harmlessly).
#[derive(Debug, Default)]
pub struct ReportCache {
    reports: Mutex<HashMap<RunKey, SimReport>>,
}

impl ReportCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct simulations memoized.
    pub fn len(&self) -> usize {
        self.reports.lock().expect("report cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SimCache for ReportCache {
    fn lookup(&self, key: &RunKey) -> Option<SimReport> {
        self.reports
            .lock()
            .expect("report cache poisoned")
            .get(key)
            .cloned()
    }

    fn insert(&self, key: &RunKey, report: &SimReport, _cost_micros: u64) {
        self.reports
            .lock()
            .expect("report cache poisoned")
            .insert(key.clone(), report.clone());
    }
}

/// A snapshot of a [`ResultStore`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups served by re-reading a spilled record from disk.
    pub spill_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Reports inserted.
    pub insertions: u64,
    /// Resident entries evicted to honor the capacity bound.
    pub evictions: u64,
    /// Entries currently resident in memory.
    pub resident: u64,
    /// Estimated bytes currently resident.
    pub resident_cost: u64,
}

/// One resident entry: the report plus its recency stamp and cost.
#[derive(Debug)]
struct StoreEntry {
    report: SimReport,
    /// Estimated serialized size — the capacity currency.
    cost: u64,
    /// Wall-clock micros the simulation took (recompute cost).
    sim_micros: u64,
    /// Recency stamp (monotone ticks; larger = newer).
    tick: u64,
}

#[derive(Debug, Default)]
struct StoreInner {
    entries: HashMap<u128, StoreEntry>,
    /// Recency index: tick → hash. Ticks are unique (monotone counter),
    /// so the first entry is always the least recently used.
    lru: BTreeMap<u64, u128>,
    next_tick: u64,
    resident_cost: u64,
}

/// The daemon's content-addressed result store: reports keyed by
/// [`RunKey::content_hash`], capacity-bounded in estimated bytes with
/// cost-aware LRU eviction, and an optional on-disk spill of the
/// byte-stable JSON report so evicted results can still be served
/// without re-simulating.
///
/// Eviction is LRU with one cost-aware refinement: among the four least
/// recently used entries, the one that was *cheapest to compute* is
/// evicted first — a hot store keeps the reports that are expensive to
/// regenerate (a 32-core `python` run costs ~500 ms; a 1-core `counter`
/// run costs ~1 ms) at a small recency penalty.
#[derive(Debug)]
pub struct ResultStore {
    /// Maximum estimated resident bytes before eviction.
    capacity_bytes: u64,
    spill_dir: Option<PathBuf>,
    inner: Mutex<StoreInner>,
    hits: AtomicU64,
    spill_hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

/// How many least-recently-used candidates the cost-aware eviction
/// considers per eviction.
const EVICT_WINDOW: usize = 4;

impl ResultStore {
    /// An empty store bounded at `capacity_bytes` of estimated resident
    /// report data, with no spill directory.
    pub fn new(capacity_bytes: u64) -> ResultStore {
        ResultStore {
            capacity_bytes,
            spill_dir: None,
            inner: Mutex::default(),
            hits: AtomicU64::new(0),
            spill_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Enables on-disk spill: evicted reports are written to
    /// `dir/<hash>.json` (the byte-stable `SimReport` JSON) and re-read —
    /// and re-admitted — on a later lookup.
    pub fn with_spill(mut self, dir: PathBuf) -> ResultStore {
        self.spill_dir = Some(dir);
        self
    }

    fn spill_path(&self, hash: u128) -> Option<PathBuf> {
        self.spill_dir
            .as_ref()
            .map(|d| d.join(format!("{hash:032x}.json")))
    }

    /// The report stored under `hash`, consulting memory first and the
    /// spill directory second (a spill hit re-admits the report).
    pub fn lookup_hash(&self, hash: u128) -> Option<SimReport> {
        {
            let mut inner = self.inner.lock().expect("result store poisoned");
            let tick = inner.next_tick;
            if let Some(entry) = inner.entries.get_mut(&hash) {
                let old = entry.tick;
                entry.tick = tick;
                let report = entry.report.clone();
                inner.lru.remove(&old);
                inner.lru.insert(tick, hash);
                inner.next_tick += 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(report);
            }
        }
        if let Some(path) = self.spill_path(hash) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Ok(json) = retcon_sim::json::Json::parse(&text) {
                    if let Ok(report) = SimReport::from_json(&json) {
                        self.spill_hits.fetch_add(1, Ordering::Relaxed);
                        // Re-admit: recently wanted again. Spill micros are
                        // unknown post-restart; admit at zero recompute cost
                        // (it can be re-read from disk again if evicted).
                        self.insert_hash(hash, &report, 0);
                        return Some(report);
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores `report` under `hash`, evicting (and spilling) as needed.
    pub fn insert_hash(&self, hash: u128, report: &SimReport, sim_micros: u64) {
        let text = report.to_json().to_pretty_string();
        let cost = text.len() as u64;
        let mut spills: Vec<(PathBuf, String)> = Vec::new();
        {
            let mut inner = self.inner.lock().expect("result store poisoned");
            if inner.entries.contains_key(&hash) {
                return; // Racing insert of the same content: keep the first.
            }
            self.insertions.fetch_add(1, Ordering::Relaxed);
            let tick = inner.next_tick;
            inner.next_tick += 1;
            inner.entries.insert(
                hash,
                StoreEntry {
                    report: report.clone(),
                    cost,
                    sim_micros,
                    tick,
                },
            );
            inner.lru.insert(tick, hash);
            inner.resident_cost += cost;
            // Evict until within capacity (never the entry just inserted —
            // it is the newest, and the window only sees the oldest four
            // unless the store has shrunk to that size; guard explicitly).
            while inner.resident_cost > self.capacity_bytes && inner.entries.len() > 1 {
                let victim = {
                    let candidates: Vec<u128> = inner
                        .lru
                        .values()
                        .copied()
                        .filter(|h| *h != hash)
                        .take(EVICT_WINDOW)
                        .collect();
                    // Cheapest-to-recompute among the oldest few.
                    candidates
                        .into_iter()
                        .min_by_key(|h| inner.entries[h].sim_micros)
                        .expect("entries.len() > 1 guarantees a candidate")
                };
                let entry = inner.entries.remove(&victim).expect("victim resident");
                inner.lru.remove(&entry.tick);
                inner.resident_cost -= entry.cost;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if let Some(path) = self.spill_path(victim) {
                    spills.push((path, entry.report.to_json().to_pretty_string()));
                }
            }
        }
        // Write spill files outside the lock; losing one on error only
        // costs a future re-simulation.
        for (path, text) in spills {
            let _ = std::fs::write(&path, text);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("result store poisoned");
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            spill_hits: self.spill_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: inner.entries.len() as u64,
            resident_cost: inner.resident_cost,
        }
    }
}

impl SimCache for ResultStore {
    fn lookup(&self, key: &RunKey) -> Option<SimReport> {
        self.lookup_hash(key.content_hash())
    }

    fn insert(&self, key: &RunKey, report: &SimReport, cost_micros: u64) {
        self.insert_hash(key.content_hash(), report, cost_micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(cores: usize, seed: u64) -> RunKey {
        RunKey::new(Workload::Counter, System::Retcon, cores, seed)
    }

    #[test]
    fn canonical_bytes_separate_distinct_keys() {
        let a = key(2, 42);
        assert_eq!(a.canonical_bytes(), key(2, 42).canonical_bytes());
        assert_ne!(a.canonical_bytes(), key(4, 42).canonical_bytes());
        assert_ne!(a.canonical_bytes(), key(2, 43).canonical_bytes());
        let mut eager = a.clone();
        eager.system = System::Eager;
        assert_ne!(a.canonical_bytes(), eager.canonical_bytes());
    }

    #[test]
    fn default_retcon_cfg_normalizes_to_none() {
        // `Retcon + Some(default)` runs the identical simulation to
        // `Retcon + None` (the runner maps both to the same protocol), so
        // they must share a hash — the ISSUE-pinned invariant that hash
        // equality tracks record byte-equality.
        let plain = key(2, 42);
        let mut explicit = plain.clone();
        explicit.cfg = Some(RetconConfig::default());
        assert_eq!(plain.canonical_bytes(), explicit.canonical_bytes());
        assert_eq!(plain.content_hash(), explicit.content_hash());

        // A non-default config must NOT normalize away.
        let mut sized = plain.clone();
        sized.cfg = Some(RetconConfig {
            ivb_capacity: 4,
            ..RetconConfig::default()
        });
        assert_ne!(plain.content_hash(), sized.content_hash());

        // And a default config under a *different* system is not the same
        // simulation as that system's default protocol.
        let mut eager_cfg = plain.clone();
        eager_cfg.system = System::Eager;
        eager_cfg.cfg = Some(RetconConfig::default());
        let mut eager_plain = plain.clone();
        eager_plain.system = System::Eager;
        assert_ne!(eager_cfg.content_hash(), eager_plain.content_hash());
    }

    #[test]
    fn report_cache_round_trips() {
        let cache = ReportCache::new();
        let k = key(2, 42);
        assert!(cache.lookup(&k).is_none());
        let report = simulate(&k).unwrap();
        cache.insert(&k, &report, 10);
        assert_eq!(cache.lookup(&k), Some(report));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn store_hits_and_misses_are_counted() {
        let store = ResultStore::new(1 << 20);
        let k = key(1, 42);
        assert!(store.lookup(&k).is_none());
        let report = simulate(&k).unwrap();
        store.insert(&k, &report, 10);
        assert_eq!(store.lookup(&k), Some(report));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.resident), (1, 1, 1, 1));
        assert!(s.resident_cost > 0);
    }

    #[test]
    fn store_evicts_cheapest_of_oldest_when_full() {
        let store = ResultStore::new(1); // everything over budget
        let a = key(1, 1);
        let b = key(1, 2);
        let ra = simulate(&a).unwrap();
        let rb = simulate(&b).unwrap();
        store.insert(&a, &ra, 5);
        store.insert(&b, &rb, 500);
        // Capacity 1 byte: inserting b evicts a (older AND cheaper).
        let s = store.stats();
        assert_eq!(s.resident, 1);
        assert!(s.evictions >= 1);
        assert!(store.lookup(&b).is_some());
        assert!(store.lookup(&a).is_none());
    }

    #[test]
    fn store_spills_and_reloads() {
        let dir = std::env::temp_dir().join(format!("retcon-spill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = ResultStore::new(1).with_spill(dir.clone());
        let a = key(1, 1);
        let b = key(1, 2);
        let ra = simulate(&a).unwrap();
        store.insert(&a, &ra, 5);
        store.insert(&b, &simulate(&b).unwrap(), 5);
        // `a` was evicted to disk; the lookup reloads it byte-identically.
        assert_eq!(store.lookup(&a), Some(ra));
        assert_eq!(store.stats().spill_hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_for_matches_runner_shape() {
        let k = key(2, 7);
        let record = record_for(&k, simulate(&k).unwrap());
        assert_eq!(record.workload, "counter");
        assert_eq!(record.system, "RetCon");
        assert_eq!(record.cores, 2);
        assert_eq!(record.seed, 7);
        assert!(record.knobs.is_empty());
        assert_eq!(record.seq_cycles, 0);
    }
}
