//! The transactionalized-CPython model: GIL elision with reference counts.
//!
//! The paper's most dramatic result: applying speculative lock elision to
//! CPython's global interpreter lock yields *no* scaling because every
//! bytecode batch updates **reference counts of hot shared objects**
//! (`None`, small ints, interned strings…), and — in the unoptimized
//! variant — shared interpreter globals that feed addresses (modelled here
//! as a shared free-list pointer). The `_opt` variant makes the globals
//! thread-private (the paper's `__thread` annotation), leaving only the
//! refcounts — which RETCON repairs, turning no-scaling into near-linear
//! scaling (30× on 32 cores).
//!
//! Each transaction INCREFs a handful of objects (references it acquires)
//! and DECREFs a *different* handful (references acquired by earlier
//! batches and released now) — so per-transaction refcount deltas are
//! nonzero, exactly as in a real interpreter where references outlive a GIL
//! window. Every DECREF is followed by the `if (refcount == 0) dealloc()`
//! branch, which RETCON captures as a `≠` constraint on the final count —
//! satisfied as long as the object stays referenced, i.e. always, for hot
//! objects.

use retcon_isa::{Addr, BinOp, CmpOp, Operand, ProgramBuilder, Reg};

use crate::rng::SplitMix64;
use crate::spec::{Alloc, WorkloadSpec};

/// Total bytecode-batch transactions across all cores.
const TOTAL_TXS: u64 = 4096;
/// Hot shared objects (one block each; `None`, `True`, small ints…).
const HOT_OBJECTS: u64 = 8;
/// Cold objects.
const COLD_OBJECTS: u64 = 1024;
/// Objects INCREF'd (and, separately, DECREF'd) per transaction.
const TOUCHES: usize = 3;
/// Initial refcount of every object (hot objects are massively shared in a
/// real interpreter).
const INITIAL_RC: u64 = 1_000_000;
/// Interpreter work per half of a bytecode batch.
const WORK: u32 = 1500;
/// Free-list pool words (base variant).
const POOL_WORDS: u64 = 4096;

/// Builds the CPython model. `optimized` makes the interpreter globals
/// thread-private (removing the shared free-list pointer).
pub fn build(num_cores: usize, seed: u64, optimized: bool) -> WorkloadSpec {
    let mut alloc = Alloc::new();
    let freelist_ptr = alloc.alloc_words(1);
    let hot = alloc.alloc_blocks(HOT_OBJECTS);
    let cold = alloc.alloc_blocks(COLD_OBJECTS);
    let pool = alloc.alloc_words(POOL_WORDS);

    let mut init = Vec::new();
    for i in 0..HOT_OBJECTS {
        init.push((Addr(hot.0 + i * 8), INITIAL_RC));
    }
    for i in 0..COLD_OBJECTS {
        init.push((Addr(cold.0 + i * 8), INITIAL_RC));
    }

    let iters = (TOTAL_TXS / num_cores as u64).max(1);
    let mut rng = SplitMix64::new(seed ^ 0x7079_7468); // "pyth"

    let mut programs = Vec::with_capacity(num_cores);
    let mut tapes = Vec::with_capacity(num_cores);
    for core in 0..num_cores {
        let mut core_rng = rng.fork(core as u64);
        // Tape: TOUCHES objects to INCREF, then TOUCHES *different* objects
        // to DECREF, per transaction (references flow across batches, so
        // per-transaction deltas are nonzero).
        let mut tape = Vec::with_capacity(iters as usize * TOUCHES * 2);
        for _ in 0..iters {
            for _ in 0..(2 * TOUCHES) {
                let addr = if core_rng.chance(3, 4) {
                    hot.0 + core_rng.below(HOT_OBJECTS) * 8
                } else {
                    cold.0 + core_rng.below(COLD_OBJECTS) * 8
                };
                tape.push(addr);
            }
        }
        tapes.push(tape);

        let mut b = ProgramBuilder::new();
        let body = b.block();
        let done = b.block();
        let r_iter = Reg(0);
        let r_inc: [Reg; TOUCHES] = [Reg(10), Reg(11), Reg(12)];
        let r_dec: [Reg; TOUCHES] = [Reg(13), Reg(14), Reg(15)];
        let r_a = Reg(4);
        let r_v = Reg(5);

        b.imm(r_iter, iters);
        b.jump(body);

        b.select(body);
        for r in r_inc.iter().chain(&r_dec) {
            b.input(*r);
        }
        b.tx_begin();
        b.work(WORK);

        if !optimized {
            // The shared interpreter global: a free-list pointer whose
            // loaded value feeds an address (Py_Malloc-style bump pointer).
            b.imm(r_a, freelist_ptr.0);
            b.load(r_v, r_a, 0);
            b.bin(BinOp::Add, r_v, r_v, Operand::Imm(1));
            b.store(Operand::Reg(r_v), r_a, 0);
            b.bin(BinOp::And, r_v, r_v, Operand::Imm((POOL_WORDS - 1) as i64));
            b.bin(BinOp::Add, r_v, r_v, Operand::Imm(pool.0 as i64));
            b.load(Reg(6), r_v, 0);
        }

        // INCREF each acquired object.
        for r in r_inc {
            b.load(r_v, r, 0);
            b.bin(BinOp::Add, r_v, r_v, Operand::Imm(1));
            b.store(Operand::Reg(r_v), r, 0);
        }
        b.work(WORK);
        // DECREF each released object, with the dealloc-if-zero branch.
        for r in r_dec {
            let dealloc = b.block();
            let next = b.block();
            b.load(r_v, r, 0);
            b.bin(BinOp::Sub, r_v, r_v, Operand::Imm(1));
            b.store(Operand::Reg(r_v), r, 0);
            b.branch(CmpOp::Eq, r_v, Operand::Imm(0), dealloc, next);
            b.select(dealloc);
            // Deallocation never actually happens for live objects; the
            // path exists so the branch constrains the count.
            b.work(200);
            b.jump(next);
            b.select(next);
        }
        b.tx_commit();
        b.bin(BinOp::Sub, r_iter, r_iter, Operand::Imm(1));
        b.branch(CmpOp::Gt, r_iter, Operand::Imm(0), body, done);

        b.select(done);
        b.barrier();
        b.halt();
        programs.push(b.build().expect("python program is well-formed"));
    }

    WorkloadSpec {
        name: if optimized { "python_opt" } else { "python" },
        programs,
        tapes,
        init,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_spec, System};

    #[test]
    fn both_variants_validate() {
        for optimized in [false, true] {
            let spec = build(4, 8, optimized);
            for p in &spec.programs {
                assert!(p.validate().is_ok());
            }
        }
    }

    #[test]
    fn refcounts_balance_in_aggregate() {
        // Every transaction INCREFs and DECREFs the same number of
        // references, so the *sum* of all refcounts is conserved — under
        // eager and RETCON alike (the repair-correctness litmus test).
        for system in [System::Eager, System::Retcon] {
            let spec = build(4, 8, true);
            let cfg = retcon_sim::SimConfig::with_cores(4);
            let mut machine =
                retcon_sim::Machine::new(cfg, system.protocol(4), spec.programs.clone());
            for (i, tape) in spec.tapes.iter().enumerate() {
                machine.set_tape(i, tape.clone());
            }
            for &(a, v) in &spec.init {
                machine.init_word(a, v);
            }
            machine.run().expect("runs");
            let expected: u64 = spec.init.iter().map(|&(_, v)| v).sum();
            let actual: u64 = spec
                .init
                .iter()
                .map(|&(a, _)| machine.mem().read_word(a))
                .sum();
            assert_eq!(actual, expected, "{system:?}");
        }
    }

    #[test]
    fn lazy_vb_cannot_rescue_python_opt() {
        // Refcount values genuinely change between read and commit, so
        // value-based validation keeps aborting (§5.1: lazy-vb "does not
        // allow commits where a value read has been changed remotely").
        let spec = build(8, 8, true);
        let lazy_vb = run_spec(&spec, System::LazyVb, 8).unwrap();
        let retcon = run_spec(&spec, System::Retcon, 8).unwrap();
        assert!(
            (retcon.cycles as f64) < 0.7 * lazy_vb.cycles as f64,
            "RetCon {} vs lazy-vb {}",
            retcon.cycles,
            lazy_vb.cycles
        );
    }

    #[test]
    fn retcon_transforms_python_opt() {
        let spec = build(8, 8, true);
        let eager = run_spec(&spec, System::Eager, 8).unwrap();
        let retcon = run_spec(&spec, System::Retcon, 8).unwrap();
        assert!(
            (retcon.cycles as f64) < 0.6 * eager.cycles as f64,
            "RetCon {} vs eager {}",
            retcon.cycles,
            eager.cycles
        );
    }

    #[test]
    fn retcon_does_not_rescue_base_python() {
        let spec = build(8, 8, false);
        let eager = run_spec(&spec, System::Eager, 8).unwrap();
        let retcon = run_spec(&spec, System::Retcon, 8).unwrap();
        let ratio = retcon.cycles as f64 / eager.cycles as f64;
        assert!(
            ratio > 0.55,
            "unexpected RETCON rescue of base python: {ratio}"
        );
    }
}
