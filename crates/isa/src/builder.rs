//! Fluent construction of [`Program`]s.

use std::fmt;

use crate::instr::{BinOp, CmpOp, Instr, Operand};
use crate::program::{BasicBlock, BlockId, Program, ValidateError};
use crate::reg::Reg;

/// Error returned by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The finished program failed structural validation.
    Invalid(ValidateError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ValidateError> for BuildError {
    fn from(e: ValidateError) -> Self {
        BuildError::Invalid(e)
    }
}

/// An incremental builder for [`Program`]s.
///
/// The builder starts with a single *entry* block selected. New blocks are
/// reserved with [`block`](Self::block) (so they can be referenced as branch
/// targets before they are filled) and populated after
/// [`select`](Self::select)-ing them. Each `emit` appends to the currently
/// selected block.
///
/// # Example
///
/// ```
/// use retcon_isa::{ProgramBuilder, Reg};
/// let mut b = ProgramBuilder::new();
/// b.imm(Reg(0), 42);
/// b.halt();
/// let p = b.build()?;
/// assert_eq!(p.blocks.len(), 1);
/// # Ok::<(), retcon_isa::BuildError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    blocks: Vec<BasicBlock>,
    current: usize,
}

impl ProgramBuilder {
    /// Creates a builder with an empty entry block selected.
    pub fn new() -> Self {
        ProgramBuilder {
            blocks: vec![BasicBlock::default()],
            current: 0,
        }
    }

    /// The entry block's id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Reserves a new, empty block and returns its id. Does not change the
    /// selection.
    pub fn block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::default());
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Selects `block` as the target of subsequent `emit` calls.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder.
    pub fn select(&mut self, block: BlockId) {
        assert!(
            (block.0 as usize) < self.blocks.len(),
            "select of unknown block b{}",
            block.0
        );
        self.current = block.0 as usize;
    }

    /// The currently selected block.
    pub fn current(&self) -> BlockId {
        BlockId(self.current as u32)
    }

    /// Appends `instr` to the selected block.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.blocks[self.current].instrs.push(instr);
        self
    }

    /// Emits `dst <- value`.
    pub fn imm(&mut self, dst: Reg, value: u64) -> &mut Self {
        self.emit(Instr::Imm { dst, value })
    }

    /// Emits `dst <- src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Instr::Mov { dst, src })
    }

    /// Emits `dst <- lhs op rhs`.
    pub fn bin(&mut self, op: BinOp, dst: Reg, lhs: Reg, rhs: Operand) -> &mut Self {
        self.emit(Instr::Bin { op, dst, lhs, rhs })
    }

    /// Emits `dst <- dst + k` (the increment idiom of the paper's auxiliary
    /// counters).
    pub fn add_imm(&mut self, dst: Reg, k: i64) -> &mut Self {
        self.bin(BinOp::Add, dst, dst, Operand::Imm(k))
    }

    /// Emits `dst <- memory[addr + offset]`.
    pub fn load(&mut self, dst: Reg, addr: Reg, offset: i64) -> &mut Self {
        self.emit(Instr::Load { dst, addr, offset })
    }

    /// Emits `memory[addr + offset] <- src`.
    pub fn store(&mut self, src: Operand, addr: Reg, offset: i64) -> &mut Self {
        self.emit(Instr::Store { src, addr, offset })
    }

    /// Emits a conditional branch terminating the selected block.
    pub fn branch(
        &mut self,
        op: CmpOp,
        lhs: Reg,
        rhs: Operand,
        taken: BlockId,
        not_taken: BlockId,
    ) -> &mut Self {
        self.emit(Instr::Branch {
            op,
            lhs,
            rhs,
            taken,
            not_taken,
        })
    }

    /// Emits an unconditional jump terminating the selected block.
    pub fn jump(&mut self, target: BlockId) -> &mut Self {
        self.emit(Instr::Jump { target })
    }

    /// Emits an input-tape pop.
    pub fn input(&mut self, dst: Reg) -> &mut Self {
        self.emit(Instr::Input { dst })
    }

    /// Emits `cycles` cycles of abstract work.
    pub fn work(&mut self, cycles: u32) -> &mut Self {
        self.emit(Instr::Work { cycles })
    }

    /// Emits a transaction begin.
    pub fn tx_begin(&mut self) -> &mut Self {
        self.emit(Instr::TxBegin)
    }

    /// Emits a transaction commit.
    pub fn tx_commit(&mut self) -> &mut Self {
        self.emit(Instr::TxCommit)
    }

    /// Emits a barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.emit(Instr::Barrier)
    }

    /// Emits a halt, terminating the selected block.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// Finishes the program and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Invalid`] if the program violates any structural
    /// invariant (see [`Program::validate`]).
    pub fn build(self) -> Result<Program, BuildError> {
        let program = Program {
            blocks: self.blocks,
        };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_program() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(0), 1).halt();
        let p = b.build().unwrap();
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(p.blocks[0].instrs.len(), 2);
    }

    #[test]
    fn forward_references_allowed() {
        let mut b = ProgramBuilder::new();
        let later = b.block();
        b.jump(later);
        b.select(later);
        b.halt();
        let p = b.build().unwrap();
        assert!(p.validate().is_ok());
    }

    #[test]
    fn invalid_program_rejected_at_build() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(0), 1); // no terminator
        assert!(matches!(b.build(), Err(BuildError::Invalid(_))));
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn selecting_unknown_block_panics() {
        let mut b = ProgramBuilder::new();
        b.select(BlockId(3));
    }

    #[test]
    fn helpers_emit_expected_instructions() {
        let mut b = ProgramBuilder::new();
        b.input(Reg(1));
        b.work(10);
        b.tx_begin();
        b.load(Reg(2), Reg(1), 4);
        b.add_imm(Reg(2), 1);
        b.store(Operand::Reg(Reg(2)), Reg(1), 4);
        b.tx_commit();
        b.barrier();
        b.halt();
        let p = b.build().unwrap();
        let instrs = &p.blocks[0].instrs;
        assert!(matches!(instrs[0], Instr::Input { .. }));
        assert!(matches!(instrs[1], Instr::Work { cycles: 10 }));
        assert!(matches!(instrs[2], Instr::TxBegin));
        assert!(matches!(instrs[3], Instr::Load { offset: 4, .. }));
        assert!(matches!(
            instrs[4],
            Instr::Bin {
                op: BinOp::Add,
                rhs: Operand::Imm(1),
                ..
            }
        ));
        assert!(matches!(instrs[8], Instr::Halt));
    }

    #[test]
    fn current_tracks_selection() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.current(), b.entry());
        let blk = b.block();
        b.select(blk);
        assert_eq!(b.current(), blk);
    }
}
