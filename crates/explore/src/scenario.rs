//! Explore scenarios: a small workload plus a schedule-independent oracle.
//!
//! Every oracle here is valid under *any* serializable commit order — the
//! transaction bodies either commute (additive updates, so the final state
//! is a pure function of the committed multiset) or conserve an invariant
//! (transfers). A schedule that fails an oracle therefore witnessed a
//! genuine serializability violation, never a legal reordering.

use retcon_htm::{AnyProtocol, Protocol};
use retcon_isa::Addr;
use retcon_sim::{Machine, SimReport};
use retcon_workloads::{explore, System, WorkloadSpec};

use crate::mutation::LostUpdateTm;

/// The protocol a campaign explores: a built-in [`System`], or the
/// intentionally-broken mutation shim (which exercises the
/// [`AnyProtocol::Dyn`] adapter path in full machine runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemUnderTest {
    /// A built-in hardware configuration.
    Builtin(System),
    /// The lost-update mutation shim, boxed behind [`AnyProtocol::Dyn`].
    LostUpdate,
}

impl SystemUnderTest {
    /// Display label (`System::label`, or `"lost-update"`).
    pub fn label(self) -> &'static str {
        match self {
            SystemUnderTest::Builtin(s) => s.label(),
            SystemUnderTest::LostUpdate => "lost-update",
        }
    }

    /// Instantiates the protocol for `num_cores` cores.
    pub fn protocol(self, num_cores: usize) -> AnyProtocol {
        match self {
            SystemUnderTest::Builtin(s) => s.protocol(num_cores),
            SystemUnderTest::LostUpdate => {
                let boxed: Box<dyn Protocol> = Box::new(LostUpdateTm::new(num_cores));
                boxed.into()
            }
        }
    }
}

/// The final-state predicate a scenario pins.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OracleKind {
    /// Counter `i` (one per block) must end exactly at `expected[i]` —
    /// valid under every serial order because the updates commute, and
    /// identical for every protocol (the cross-protocol agreement oracle
    /// is this exactness: all systems are checked against one state).
    Exact { expected: Vec<u64> },
    /// The sum over the first `pool` counters must stay `total`
    /// (transfers conserve; per-counter values are order-dependent).
    Conservation { pool: u64, total: u64 },
}

/// A serializability violation (or protocol-invariant leak) found on an
/// explored schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Human-readable description of the failed check.
    pub detail: String,
}

/// A small workload plus its schedule-independent oracle.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label (`"x-counter"`, `"x-pool"`, `"x-transfer"`).
    pub name: &'static str,
    /// Core count the spec was built for.
    pub cores: usize,
    /// Workload-build seed (tapes).
    pub seed: u64,
    /// The built workload.
    pub spec: WorkloadSpec,
    /// Exactly-once commit count every run must reach.
    pub expected_commits: u64,
    oracle: OracleKind,
}

impl Scenario {
    /// The shared-counter scenario: `iters` double-increment transactions
    /// per core on one counter.
    pub fn counter(cores: usize, iters: u64) -> Scenario {
        Scenario {
            name: "x-counter",
            cores,
            seed: 0,
            spec: explore::counter(cores, iters),
            expected_commits: cores as u64 * iters,
            oracle: OracleKind::Exact {
                expected: vec![explore::counter_expected(cores, iters)],
            },
        }
    }

    /// The counter-pool scenario: tape-chosen counters, `incs` increments
    /// per transaction.
    pub fn pool(cores: usize, pool: u64, iters: u64, incs: u32, seed: u64) -> Scenario {
        let (spec, expected) = explore::pool(cores, pool, iters, incs, seed);
        Scenario {
            name: "x-pool",
            cores,
            seed,
            spec,
            expected_commits: cores as u64 * iters,
            oracle: OracleKind::Exact { expected },
        }
    }

    /// The transfer scenario: branchy conserving transactions.
    pub fn transfer(cores: usize, pool: u64, iters: u64, seed: u64) -> Scenario {
        let (spec, total) = explore::transfer(cores, pool, iters, seed);
        Scenario {
            name: "x-transfer",
            cores,
            seed,
            spec,
            expected_commits: cores as u64 * iters,
            oracle: OracleKind::Conservation { pool, total },
        }
    }

    /// Checks the oracle against a finished run: exactly-once commits, the
    /// final-state predicate, and the protocol's quiescence invariants
    /// ([`AnyProtocol::check_quiescent`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] found.
    pub fn check(&self, machine: &Machine, report: &SimReport) -> Result<(), Violation> {
        if report.protocol.commits != self.expected_commits {
            return Err(Violation {
                detail: format!(
                    "{}: {} commits, expected exactly {}",
                    self.name, report.protocol.commits, self.expected_commits
                ),
            });
        }
        match &self.oracle {
            OracleKind::Exact { expected } => {
                for (i, &want) in expected.iter().enumerate() {
                    let got = machine.mem().read_word(Addr(i as u64 * 8));
                    if got != want {
                        return Err(Violation {
                            detail: format!(
                                "{}: counter {i} ended at {got}, serial oracle says {want} \
                                 (lost or phantom update)",
                                self.name
                            ),
                        });
                    }
                }
            }
            OracleKind::Conservation { pool, total } => {
                let sum: u64 = (0..*pool)
                    .map(|i| machine.mem().read_word(Addr(i * 8)))
                    .sum();
                if sum != *total {
                    return Err(Violation {
                        detail: format!("{}: pool sum {sum} != conserved total {total}", self.name),
                    });
                }
            }
        }
        machine
            .protocol()
            .check_quiescent()
            .map_err(|detail| Violation {
                detail: format!("{}: quiescence invariant: {detail}", self.name),
            })
    }
}
