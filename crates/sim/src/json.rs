//! Hand-rolled JSON support for machine-readable simulation records.
//!
//! The build environment has no crates.io access (see DESIGN.md), so this
//! module provides the small JSON surface the experiment-record layer
//! (`retcon-lab`) and the `retcon-run --json` flag need: a [`Json`] value
//! type, a deterministic writer, and a strict parser.
//!
//! **Integer-only on purpose.** Every field of a simulation record is a
//! counter (cycles, commits, buffer occupancies), so numbers are
//! represented as `u64` exactly. Floating-point and negative literals are
//! rejected by the parser; derived quantities such as speedups are
//! computed from the integers on demand, never stored. This makes
//! emit→parse round trips bit-exact — the property the record test suite
//! pins.

use std::fmt;

/// A JSON value restricted to the subset simulation records use.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (every record field is a counter).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved by the writer, making
    /// emission deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then `as_u64`, with a descriptive error.
    pub fn req_u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-integer field `{key}`"))
    }

    /// Convenience: `get(key)` then `as_str`, with a descriptive error.
    pub fn req_str(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing or non-string field `{key}`"))
    }

    /// Convenience: `get(key)` then `as_arr`, with a descriptive error.
    pub fn req_arr(&self, key: &str) -> Result<&[Json], String> {
        self.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing or non-array field `{key}`"))
    }

    /// Serializes with two-space indentation and a trailing newline — the
    /// stable on-disk format of `results/*.json` and the golden files.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|v| !matches!(v, Json::Arr(_) | Json::Obj(_)));
                if scalar && items.len() <= 8 {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.write_pretty(out, depth + 1);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, v) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        v.write_pretty(out, depth + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact single-line serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Str(s) => {
                let mut out = String::new();
                write_escaped(&mut out, s);
                f.write_str(&out)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    write_escaped(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input, on numbers that are
    /// not non-negative integers fitting `u64`, and on unpaired
    /// surrogates in `\u` escapes.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(self.err("negative numbers are not used by records")),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point numbers are not used by records"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if text.len() > 1 && text.starts_with('0') {
            return Err(self.err("leading zeros are not valid JSON"));
        }
        text.parse::<u64>()
            .map(Json::UInt)
            .map_err(|_| self.err("integer does not fit u64"))
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u16::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes, then re-validate as UTF-8.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(j: &Json) {
        assert_eq!(&Json::parse(&j.to_pretty_string()).unwrap(), j);
        assert_eq!(&Json::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::Bool(false));
        roundtrip(&Json::UInt(0));
        roundtrip(&Json::UInt(u64::MAX));
        roundtrip(&Json::str("hello"));
        roundtrip(&Json::str("quotes \" and \\ and \n tabs \t"));
        roundtrip(&Json::str("unicode: héllo → 世界"));
    }

    #[test]
    fn structures_roundtrip() {
        roundtrip(&Json::Arr(vec![]));
        roundtrip(&Json::Obj(vec![]));
        roundtrip(&Json::obj(vec![
            ("a", Json::UInt(1)),
            ("b", Json::Arr(vec![Json::UInt(2), Json::Null])),
            (
                "c",
                Json::obj(vec![("nested", Json::Arr(vec![Json::obj(vec![])]))]),
            ),
        ]));
    }

    #[test]
    fn long_scalar_arrays_wrap() {
        let long = Json::Arr((0..20).map(Json::UInt).collect());
        roundtrip(&long);
        assert!(long.to_pretty_string().contains('\n'));
    }

    #[test]
    fn rejects_non_record_numbers() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("-3").is_err());
        assert!(Json::parse("1e9").is_err());
        assert!(Json::parse("01").is_err());
        assert!(Json::parse("18446744073709551616").is_err()); // u64::MAX + 1
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn escape_sequences_parse() {
        assert_eq!(
            Json::parse(r#""A\n\t\"\\\/""#).unwrap(),
            Json::str("A\n\t\"\\/")
        );
        // Surrogate pair for 😀 (U+1F600), both raw and escaped.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("\u{1F600}"));
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::str("\u{1F600}")
        );
        assert!(Json::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn accessors() {
        let j = Json::obj(vec![("x", Json::UInt(7)), ("s", Json::str("y"))]);
        assert_eq!(j.req_u64("x").unwrap(), 7);
        assert_eq!(j.req_str("s").unwrap(), "y");
        assert!(j.req_u64("missing").is_err());
        assert!(j.req_arr("x").is_err());
    }
}
