//! Past-the-paper scaling microbenchmark: group-local counters.
//!
//! The paper's machine tops out at 32 cores; the simulator's CoreSet size
//! classes go to 1024. This workload is built to exercise those widths
//! with *structured* contention: cores are split into groups of
//! [`GROUP_CORES`] contiguous ids, and each group hammers its own private
//! counter block with the Figure 2 double-increment transaction. Within a
//! group the conflict behaviour matches `counter` (every transaction
//! collides); across groups there is no sharing at all, so the block
//! footprints of any two groups are disjoint.
//!
//! That layout is deliberately shard-friendly: any contiguous core
//! partition whose boundaries fall on group multiples (e.g. 256 cores
//! into 2 shards of 128 = 16 whole groups each) has provably disjoint
//! shard footprints, which is exactly the premise the sharded runner
//! re-verifies at merge time. There is no barrier — each core halts when
//! its transactions are done — so the workload stays eligible for
//! sharding.

use retcon_isa::{BinOp, CmpOp, Operand, ProgramBuilder, Reg};

use crate::spec::{Alloc, WorkloadSpec};

/// Cores per contention group: one shared counter per 8 contiguous cores.
pub const GROUP_CORES: usize = 8;
/// Transactions per core (fixed per core, so total work scales with the
/// machine — this is a scaling stressor, not a fixed-work speedup curve).
const TXS_PER_CORE: u64 = 64;
/// Abstract work cycles between the two increments.
const WORK: u32 = 10;

/// Builds the group-local counter workload: `num_cores` cores in groups
/// of [`GROUP_CORES`], each group double-incrementing its own counter
/// block [`TXS_PER_CORE`] times per core.
pub fn build(num_cores: usize, _seed: u64) -> WorkloadSpec {
    let mut alloc = Alloc::new();
    let groups = num_cores.div_ceil(GROUP_CORES);
    let counters: Vec<u64> = (0..groups).map(|_| alloc.alloc_blocks(1).0).collect();

    let mut programs = Vec::with_capacity(num_cores);
    for core in 0..num_cores {
        let counter = counters[core / GROUP_CORES];
        let mut b = ProgramBuilder::new();
        let body = b.block();
        let done = b.block();
        let r_iter = Reg(0);
        let r_addr = Reg(1);
        let r_val = Reg(2);

        b.imm(r_iter, TXS_PER_CORE);
        b.imm(r_addr, counter);
        b.jump(body);

        b.select(body);
        b.tx_begin();
        b.load(r_val, r_addr, 0);
        b.bin(BinOp::Add, r_val, r_val, Operand::Imm(1));
        b.store(Operand::Reg(r_val), r_addr, 0);
        b.work(WORK);
        b.load(r_val, r_addr, 0);
        b.bin(BinOp::Add, r_val, r_val, Operand::Imm(1));
        b.store(Operand::Reg(r_val), r_addr, 0);
        b.tx_commit();
        b.bin(BinOp::Sub, r_iter, r_iter, Operand::Imm(1));
        b.branch(CmpOp::Gt, r_iter, Operand::Imm(0), body, done);

        b.select(done);
        b.halt();
        programs.push(b.build().expect("scaling_xl program is well-formed"));
    }
    WorkloadSpec {
        name: "scaling_xl",
        tapes: vec![Vec::new(); num_cores],
        init: Vec::new(),
        programs,
    }
}

/// The value every group counter must reach when all commits land.
pub fn expected_group_total(num_cores: usize, group: usize) -> u64 {
    let lo = group * GROUP_CORES;
    let hi = (lo + GROUP_CORES).min(num_cores);
    (hi - lo) as u64 * TXS_PER_CORE * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_spec, System};
    use retcon_isa::Addr;

    #[test]
    fn builds_and_validates_at_odd_sizes() {
        for cores in [1, 7, 8, 9, 64, 65] {
            let spec = build(cores, 0);
            assert_eq!(spec.num_cores(), cores);
            for p in &spec.programs {
                assert!(p.validate().is_ok());
            }
        }
    }

    #[test]
    fn groups_preserve_their_counts() {
        let cores = 16;
        let spec = build(cores, 0);
        let cfg = retcon_sim::SimConfig::with_cores(cores);
        let mut machine: retcon_sim::Machine =
            retcon_sim::Machine::new(cfg, System::Retcon.protocol(cores), spec.programs.clone());
        machine.run().expect("runs");
        for g in 0..2 {
            let base = g as u64 * 8; // group g's counter block
            assert_eq!(
                machine.mem().read_word(Addr(base)),
                expected_group_total(cores, g),
                "group {g}"
            );
        }
    }

    #[test]
    fn within_group_contention_preserves_commits() {
        // 8 cores form one full group hammering a single counter block:
        // heavy contention, but no transaction may be lost. Cross-group
        // disjointness is pinned end-to-end by the sharded cmp test.
        let spec = build(8, 0);
        let report = run_spec(&spec, System::Eager, 8).expect("runs");
        assert_eq!(report.protocol.commits, 8 * TXS_PER_CORE);
        assert!(report.breakdown().conflict > 0, "one group must contend");
    }
}
