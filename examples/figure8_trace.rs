//! A step-by-step trace of the paper's Figure 8 through the RETCON engine.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example figure8_trace
//! ```
//!
//! Figure 8 of the paper walks one transaction through symbolic tracking
//! and repair: block `A` (initial value 5) is loaded, incremented and
//! constrained; its block is stolen mid-transaction; a store forwards
//! through the symbolic store buffer; and commit-time repair recomputes
//! every output against the final value of `A` (6). This example replays
//! each timestep against the real engine and prints the structures the
//! figure shows — the symbolic register file, the initial value buffer
//! (with constraints) and the symbolic store buffer.

use retcon::{Engine, LoadPath, RetconConfig};
use retcon_isa::{Addr, BinOp, CmpOp, Reg};

const A: Addr = Addr(0); // block 0
const B: Addr = Addr(8); // block 1

fn dump(step: &str, eng: &Engine, regs: &[(&str, u64)]) {
    println!("{step}");
    let mut line = String::from("    regs:");
    for (name, val) in regs {
        let reg = if *name == "r1" { Reg(1) } else { Reg(2) };
        match eng.symbolic_value(reg) {
            Some(sym) => line += &format!(" {name}={val} ({sym})"),
            None => line += &format!(" {name}={val}"),
        }
    }
    println!("{line}");
    let mut ivb = String::from("    IVB: ");
    for entry in eng.ivb().iter() {
        ivb += &format!(
            "block {:#x} initial[A]={}{}{}",
            entry.block().0,
            entry.initial(entry.block().base()),
            if entry.is_lost() { " LOST" } else { "" },
            if entry.is_written() { " W" } else { "" },
        );
        if let Some(c) = eng.constraint(entry.block().base()) {
            ivb += &format!(" constraint {c}");
        }
    }
    if eng.ivb().is_empty() {
        ivb += "(empty)";
    }
    println!("{ivb}");
    let mut ssb = String::from("    SSB: ");
    for e in eng.ssb().iter() {
        match e.sym {
            Some(s) => ssb += &format!("[{:#x}]=({}, {}) ", e.addr.0, e.value, s),
            None => ssb += &format!("[{:#x}]=({}, --) ", e.addr.0, e.value),
        }
    }
    if eng.ssb().is_empty() {
        ssb += "(empty)";
    }
    println!("{ssb}\n");
}

fn main() {
    println!("Figure 8 walkthrough: A = 5, B = 7 initially\n");
    let mut eng = Engine::new(RetconConfig::default());
    eng.begin();

    // t1: ld [A] -> r1 (first symbolic load: IVB captures the block).
    assert!(matches!(eng.load_path(A), LoadPath::Memory));
    assert!(eng.begin_tracking(A.block(), |w| if w == A { 5 } else { 0 }));
    let r1 = eng.finish_tracked_load(Reg(1), A);
    dump("t1: ld [A] -> r1", &eng, &[("r1", r1)]);

    // t2: r2 = r1 + 1.
    let r2 = eng.on_alu(BinOp::Add, Reg(2), Reg(1), None, r1, 1);
    dump("t2: r2 = r1 + 1", &eng, &[("r1", r1), ("r2", r2)]);

    // t3: br r2 > 1 (taken) — constraint A+1 > 1, i.e. A > 0.
    let taken = eng.on_branch(CmpOp::Gt, Reg(2), None, r2, 1);
    assert!(taken);
    dump(
        "t3: br r2 > 1 (taken)  =>  A > 0",
        &eng,
        &[("r1", r1), ("r2", r2)],
    );

    // t4: st r2 -> [B] — symbolic store buffered.
    eng.on_store(B, Some(Reg(2)), r2);
    dump("t4: st r2 -> [B]", &eng, &[("r1", r1), ("r2", r2)]);

    // t5: ld [B] -> r1 forwards from the SSB; meanwhile A is stolen.
    assert!(matches!(eng.load_path(B), LoadPath::StoreForward { .. }));
    let r1 = eng.finish_forwarded_load(Reg(1), B);
    eng.on_steal(A.block());
    dump(
        "t5: ld [B] -> r1 (store-forward); remote steals block A",
        &eng,
        &[("r1", r1), ("r2", r2)],
    );

    // t6: r1 = r1 + 2.
    let r1 = eng.on_alu(BinOp::Add, Reg(1), Reg(1), None, r1, 2);
    dump("t6: r1 = r1 + 2", &eng, &[("r1", r1), ("r2", r2)]);

    // t7: br r1 < 10 (taken) — combined constraint 0 < A < 7.
    let taken = eng.on_branch(CmpOp::Lt, Reg(1), None, r1, 10);
    assert!(taken);
    dump(
        "t7: br r1 < 10 (taken)  =>  0 < A < 7",
        &eng,
        &[("r1", r1), ("r2", r2)],
    );

    // t8: st r1 -> [A] — symbolic store to the tracked block.
    eng.on_store(A, Some(Reg(1)), r1);
    dump("t8: st r1 -> [A]", &eng, &[("r1", r1), ("r2", r2)]);

    // t9: st 0 -> [B] — non-symbolic store invalidates B's SSB entry.
    eng.on_store(B, None, 0);
    dump(
        "t9: st 0 -> [B] (non-symbolic; B's SSB entry invalidated)",
        &eng,
        &[("r1", r1), ("r2", r2)],
    );

    // Commit: the remote transaction left A = 6; constraints hold; repair.
    println!("commit: reacquire A (final value 6), check 0 < 6 < 7, repair:");
    let repair = eng
        .validate_and_repair(|w| if w == A { 6 } else { 0 })
        .expect("constraints hold");
    for (addr, value) in &repair.stores {
        println!("    store [{:#x}] <- {}", addr.0, value);
    }
    for (reg, value) in &repair.registers {
        println!("    {} <- {}", reg, value);
    }
    assert_eq!(repair.stores, vec![(A, 9)]);
    println!("\nThe store to A repairs to 6 + 3 = 9 — the paper's Figure 8 outcome.");
}
