//! Figure 1: scalability of the aggressive eager HTM on 32 processors.
//!
//! Paper reference (approximate bar heights read from the figure): genome
//! ~24x, intruder ~5x, kmeans ~13x, labyrinth ~7x, ssca2 ~10x, vacation
//! ~15x, yada ~3x, python ~1x. Our shape target: a bimodal pattern — some
//! workloads near-linear, at least half below 10x, python/intruder/yada at
//! the bottom.
//!
//! Like every figure/table bin, this is a thin wrapper over the
//! `retcon-lab` dataset of the same name: it regenerates the record
//! (job-parallel with `--jobs N`) and renders the historical stdout
//! table, or emits the machine-readable record with `--json` / `--csv`
//! (`--out DIR` writes both files).

use std::process::ExitCode;

fn main() -> ExitCode {
    retcon_lab::cli::bin_main(retcon_lab::Dataset::Fig1)
}
