//! The multicore machine: per-core interpreters plus the global scheduler.

use std::fmt;

use retcon_htm::{AnyProtocol, CommitResult, MemResult, StallAction, StallStorm};
use retcon_isa::{Addr, BlockAddr, CoreSet, Instr, Operand, Pc, Program, ValidateError, NUM_REGS};
use retcon_mem::{CoreId, MemorySystem};

use crate::config::SimConfig;
use crate::report::{CoreReport, SimReport, TimeBreakdown};
use crate::schedule::{
    Bound, CoreAction, Decision, DeterministicMinHeap, Schedule, SchedulePeek, SeededFuzz,
};
use crate::tape::InputTape;

/// Errors a simulation run can report.
#[derive(Debug)]
pub enum SimError {
    /// A core's program failed validation.
    InvalidProgram {
        /// The offending core.
        core: usize,
        /// The validation failure.
        error: ValidateError,
    },
    /// The run exceeded [`SimConfig::max_cycles`].
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
    /// The requested core count exceeds every available [`CoreSet`] size
    /// class (the widest ships 16 words = 1024 cores).
    UnsupportedCores {
        /// The requested core count.
        requested: usize,
        /// The largest supported count.
        max: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidProgram { core, error } => {
                write!(f, "invalid program on core {core}: {error}")
            }
            SimError::CycleLimit { limit } => {
                write!(f, "simulation exceeded the {limit}-cycle safety cap")
            }
            SimError::UnsupportedCores { requested, max } => {
                write!(
                    f,
                    "{requested} cores exceeds the widest CoreSet size class ({max} cores)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug)]
struct Core {
    pc: Pc,
    regs: [u64; NUM_REGS],
    reg_ckpt: [u64; NUM_REGS],
    tape: InputTape,
    now: u64,
    halted: bool,
    at_barrier: bool,
    tx_begin_pc: Option<Pc>,
    /// Cycles spent in the current transaction attempt; flushed to `busy` on
    /// commit or to `conflict` on abort.
    attempt_cycles: u64,
    breakdown: TimeBreakdown,
    instructions: u64,
}

impl Core {
    fn new(pc: Pc) -> Self {
        Core {
            pc,
            regs: [0; NUM_REGS],
            reg_ckpt: [0; NUM_REGS],
            tape: InputTape::default(),
            now: 0,
            halted: false,
            at_barrier: false,
            tx_begin_pc: None,
            attempt_cycles: 0,
            breakdown: TimeBreakdown::default(),
            instructions: 0,
        }
    }

    /// Charges `latency` cycles (transaction attempt or busy) and counts
    /// the instruction.
    #[inline]
    fn charge(&mut self, in_tx: bool, latency: u64) {
        self.now += latency;
        self.instructions += 1;
        if in_tx {
            self.attempt_cycles += latency;
        } else {
            self.breakdown.busy += latency;
        }
    }

    /// Handles a stall: the core waits `retry` cycles (conflict time) and
    /// retries the same instruction.
    #[inline]
    fn stall(&mut self, retry: u64) {
        self.now += retry;
        self.breakdown.conflict += retry;
    }

    /// Rolls control flow back to the transaction begin after an abort
    /// (zero-cycle rollback per the paper's baseline: memory state was
    /// restored by the protocol; only accounting and control flow happen
    /// here).
    fn restart_tx(&mut self) {
        self.breakdown.conflict += self.attempt_cycles;
        self.attempt_cycles = 0;
        self.regs = self.reg_ckpt;
        self.tape.rewind();
        self.pc = self
            .tx_begin_pc
            .expect("abort outside a transaction attempt");
    }

    #[inline]
    fn operand_value(&self, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(i) => i as u64,
        }
    }
}

/// The simulated multicore machine.
///
/// Construction wires `num_cores` interpreters to one shared memory system
/// and one concurrency-control protocol; [`run`](Machine::run) executes all
/// programs to completion, deterministically (the scheduler always advances
/// the core with the smallest `(clock, id)`).
///
/// See the crate-level documentation for a complete example.
pub struct Machine<const N: usize = 1> {
    cfg: SimConfig,
    mem: MemorySystem<N>,
    protocol: AnyProtocol<N>,
    cores: Vec<Core>,
    /// One program per core, stored beside (not inside) the cores so the
    /// batched interpreter can hold the current basic block's instruction
    /// slice across the mutable per-core state it updates.
    programs: Vec<Program>,
    /// Whether stall-retry storms may be fast-forwarded analytically (see
    /// [`CertPayload`]). On by default; equivalence tests disable it to
    /// compare against step-by-step retry execution.
    fast_forward: bool,
    /// Hot half of the per-core storm-certificate store: one compact
    /// entry per core, scanned in full by the peer clamp on every skip —
    /// 32 cores fit in a handful of cache lines, where scanning the fat
    /// [`CertPayload`] array would touch a cache line (or several) per
    /// peer.
    cert_meta: Vec<CertMeta>,
    /// Cold half of the store (see [`CertPayload`]): indexed by core,
    /// meaningful only where `cert_meta` is not [`CertState::Empty`].
    cert_payload: Vec<CertPayload<N>>,
    /// Incremented on every certificate lifecycle transition (certify,
    /// drop, stale-mark): together with [`MemorySystem::bump_epoch`] it
    /// keys [`Machine::clamp_cache`].
    cert_gen: u64,
    /// When enabled (sharded execution), the set of block ids this
    /// machine's cores touched through the protocol's read/write path.
    /// `None` keeps the hot path branch-free-in-practice (a never-taken,
    /// perfectly predicted check per access).
    footprint: Option<retcon_mem::FxHashSet<u64>>,
    /// When attached, transaction lifecycle events are recorded into this
    /// preallocated ring (see [`retcon_obs`]). Same `Option` discipline as
    /// `footprint`: `None` (the default) is a never-taken branch per
    /// event site, so the untraced hot path neither allocates nor slows,
    /// and the tracer is write-only — nothing in the simulation ever
    /// reads it back, which is what keeps traced and untraced runs
    /// byte-identical.
    tracer: Option<Box<retcon_obs::RingTracer>>,
    /// Memoised result of the stale-peer scan (see [`clamp_stale_peers`]):
    /// valid while no block version moved and no certificate changed
    /// state. Storm pops cluster between real batches, so within a
    /// cluster only the first pop pays the scan. Reusing a cached clamp
    /// is always sound — a conservative (lower) bound merely charges a
    /// storm in more pops; the retries charged per pop never change the
    /// simulated outcome, only how they are batched.
    clamp_cache: ClampCache,
}

/// See [`Machine::clamp_cache`].
#[derive(Debug, Clone, Copy)]
struct ClampCache {
    /// [`MemorySystem::bump_epoch`] when the scan ran.
    epoch: u64,
    /// [`Machine::cert_gen`] when the scan ran.
    gen: u64,
    /// The scan's result: the smallest stale-certificate peer key, if any.
    stale_min: Option<(u64, usize)>,
}

impl ClampCache {
    const INVALID: ClampCache = ClampCache {
        epoch: u64::MAX,
        gen: u64::MAX,
        stale_min: None,
    };
}

/// Lifecycle of a core's storm certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CertState {
    /// No certificate: the core's last attempt was not a certified stall.
    Empty,
    /// Certified and valid as of `CertMeta::epoch`.
    Fresh,
    /// Certified but the version sum has moved. Memoised: versions are
    /// monotonic, so once the sum has moved it never moves back and the
    /// certificate is stale for good. The owning core's next pop clears
    /// it; until then every fast-forwarding peer must clamp at this
    /// core's key (it re-executes for real when popped).
    Stale,
}

/// Hot per-core certificate metadata, kept small so the per-skip clamp
/// scan over all cores stays within a few cache lines.
#[derive(Debug, Clone, Copy)]
struct CertMeta {
    state: CertState,
    /// [`MemorySystem::bump_epoch`] at the last successful validation: an
    /// O(1) fast path — no block version anywhere has moved since, so the
    /// sum cannot have. On an epoch miss the sum is re-walked; a match
    /// restamps the epoch, a mismatch means the certificate is stale.
    epoch: u64,
}

impl CertMeta {
    const EMPTY: CertMeta = CertMeta {
        state: CertState::Empty,
        epoch: 0,
    };
}

/// A validated stall-storm verdict, cached per core so retries can be
/// charged without re-executing the stalled instruction.
///
/// When an access stalls, the protocol's
/// [`stall_storm`](AnyProtocol::stall_storm) dry run certifies (or
/// declines to certify) that every further retry of the same instruction
/// repeats the same outcome — same conflict verdict, no side effects
/// beyond the commuting storm updates (the stall counter, conflict-time
/// cycles, predictor training, commit-prefix L1-hit statistics). The
/// certificate is stamped with the *sum* of the conflict versions
/// ([`MemorySystem::block_version`]) of the contended block and every
/// watched commit-prefix block, which covers *every* input of the
/// verdict: a block's conflict mask and per-core speculative bits mutate
/// in lockstep with its version, victim ages and activity cannot change
/// without a commit or abort clearing those bits (bumping the version),
/// a watched prefix block cannot gain a conflict or lose residency
/// without a bump (remote writes must resolve the conflict its
/// speculative bits raise), RETCON tracking transitions and DATM
/// dependence-graph changes bump explicitly, and the stalled core's own
/// architectural and engine state are frozen while it stalls (remote
/// aborts are handled by the loop's `take_aborted` check, which precedes
/// the fast-forward). Versions are monotonic, so the sum stands still
/// exactly when every summand does, and a stale certificate left behind
/// after the core moves on can never be revalidated by accident.
///
/// While the version stands still, the interpreter replays the storm
/// analytically at the top of the batch loop: it charges as many retries
/// as the scheduling [`Bound`] and cycle limit admit in closed form and
/// applies the per-retry side effects in bulk through
/// [`apply_stall_retries`](AnyProtocol::apply_stall_retries), skipping
/// the protocol's read/write/commit path entirely. On contended runs this
/// is the hot path: a 32-core `python`/RetCon run executes 4.5 M stall
/// retries against 1.7 M retired instructions, and each skipped retry
/// saves a full conflict-mask/contention-manager/predictor walk.
#[derive(Debug, Clone, Copy)]
struct CertPayload<const N: usize = 1> {
    /// The certified per-retry side effects.
    storm: StallStorm<N>,
    /// [`storm_version_sum`] over `storm.block` and the watched prefix at
    /// certification time; the certificate is valid while it is unchanged.
    version: u64,
}

impl<const N: usize> CertPayload<N> {
    /// Placeholder for [`CertState::Empty`] slots.
    const EMPTY: CertPayload<N> = CertPayload {
        storm: StallStorm::access(CoreSet::EMPTY, BlockAddr(0)),
        version: 0,
    };
}

/// The freshness key of a storm certificate: the sum of the monotonic
/// conflict versions of the contended block and every watched
/// commit-prefix block. Monotonicity makes the sum a faithful "all
/// unchanged" test, and `wrapping_add` keeps it branch-free (a wrap would
/// need 2^64 conflict events).
fn storm_version_sum<const N: usize>(mem: &MemorySystem<N>, storm: &StallStorm<N>) -> u64 {
    let mut sum = mem.block_version(storm.block);
    for &b in storm.watch.blocks() {
        sum = sum.wrapping_add(mem.block_version(b));
    }
    sum
}

impl<const N: usize> fmt::Debug for Machine<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cfg", &self.cfg)
            .field("protocol", &self.protocol.name())
            .field("cores", &self.cores.len())
            .finish()
    }
}

impl<const N: usize> Machine<N> {
    /// Creates a machine running one program per core.
    ///
    /// Accepts any built-in protocol by value (monomorphized dispatch), an
    /// [`AnyProtocol`], or a `Box<dyn Protocol>` for external protocol
    /// implementations (virtual dispatch through the
    /// [`AnyProtocol::Dyn`] adapter).
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != cfg.num_cores`.
    pub fn new(
        cfg: SimConfig,
        protocol: impl Into<AnyProtocol<N>>,
        programs: Vec<Program>,
    ) -> Self {
        assert_eq!(
            programs.len(),
            cfg.num_cores,
            "need exactly one program per core"
        );
        Machine {
            mem: MemorySystem::new(cfg.mem, cfg.num_cores),
            protocol: protocol.into(),
            cores: programs.iter().map(|p| Core::new(p.entry())).collect(),
            cert_meta: vec![CertMeta::EMPTY; programs.len()],
            cert_payload: vec![CertPayload::EMPTY; programs.len()],
            cert_gen: 0,
            footprint: None,
            tracer: None,
            clamp_cache: ClampCache::INVALID,
            programs,
            cfg,
            fast_forward: true,
        }
    }

    /// Enables block-footprint recording: every block a core reaches
    /// through the protocol's load/store path is collected, so a sharded
    /// run can prove its shards disjoint after the fact (see
    /// [`shard`](crate::shard)).
    pub fn set_track_footprint(&mut self, enabled: bool) {
        self.footprint = if enabled {
            Some(retcon_mem::FxHashSet::default())
        } else {
            None
        };
    }

    /// The recorded block footprint, if tracking was enabled.
    pub fn footprint(&self) -> Option<&retcon_mem::FxHashSet<u64>> {
        self.footprint.as_ref()
    }

    /// Attaches an event tracer: transaction begin/conflict/stall/
    /// repair/abort/commit and storm fast-forward events are recorded
    /// into `tracer`'s preallocated ring as the run executes. Tracing is
    /// observation-only — a traced run's report is byte-identical to an
    /// untraced one (pinned by the trace-determinism suite).
    pub fn set_tracer(&mut self, tracer: retcon_obs::RingTracer) {
        self.tracer = Some(Box::new(tracer));
    }

    /// Detaches and returns the tracer, with every event recorded so
    /// far. `None` if tracing was never enabled.
    pub fn take_tracer(&mut self) -> Option<retcon_obs::RingTracer> {
        self.tracer.take().map(|b| *b)
    }

    /// Enables or disables analytic fast-forwarding of stall-retry storms.
    ///
    /// Fast-forwarding is on by default and is observationally equivalent
    /// to executing every retry (the equivalence is pinned by the root
    /// property suite); disabling it forces the step-by-step retry loop,
    /// which the equivalence tests use as the reference.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Installs `core`'s input tape.
    pub fn set_tape(&mut self, core: usize, values: Vec<u64>) {
        self.cores[core].tape = InputTape::new(values);
    }

    /// Writes an initial value into shared memory (workload setup; no
    /// timing).
    pub fn init_word(&mut self, addr: Addr, value: u64) {
        self.mem.write_word(addr, value);
    }

    /// The shared memory system.
    pub fn mem(&self) -> &MemorySystem<N> {
        &self.mem
    }

    /// Mutable access to the shared memory system (workload setup and test
    /// assertions).
    pub fn mem_mut(&mut self) -> &mut MemorySystem<N> {
        &mut self.mem
    }

    /// The concurrency-control protocol.
    ///
    /// Returns the concrete [`AnyProtocol`] so callers reading counters
    /// ([`AnyProtocol::stats`], [`AnyProtocol::retcon_stats`]) dispatch
    /// through an inlined `match`, not a vtable.
    pub fn protocol(&self) -> &AnyProtocol<N> {
        &self.protocol
    }

    /// Runs every core to completion and reports.
    ///
    /// Scheduling policy: the deterministic `(clock, id)` min-heap, unless
    /// [`SimConfig::schedule_seed`] selects a [`SeededFuzz`] perturbation
    /// (still exactly reproducible from the seed).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidProgram`] if any program fails validation;
    /// [`SimError::CycleLimit`] if the run exceeds the configured cap.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        match self.cfg.schedule_seed {
            None => self.run_with(&mut DeterministicMinHeap::new()),
            Some(seed) => self.run_with(&mut SeededFuzz::new(seed)),
        }
    }

    /// Runs every core to completion under an explicit [`Schedule`] policy.
    ///
    /// The default policy ([`DeterministicMinHeap`]) always advances the
    /// runnable core with the smallest `(clock, id)`: each runnable core
    /// has exactly one heap entry carrying its current clock, and the
    /// popped core then *batches* — `run_core` keeps executing its
    /// instructions while `(clock, id)` stays strictly below the next heap
    /// key ([`Bound::Until`]). A core's clock only grows and no other core
    /// runs in between, so the batched execution order is identical to
    /// re-popping after every instruction — but the schedule is only
    /// consulted at stall boundaries (overtaken, barrier, halt).
    /// Exploration policies instead return [`Bound::Step`] and are
    /// consulted at every instruction boundary.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidProgram`] if any program fails validation;
    /// [`SimError::CycleLimit`] if the run exceeds the configured cap.
    pub fn run_with<S: Schedule + ?Sized>(&mut self, sched: &mut S) -> Result<SimReport, SimError> {
        for (i, program) in self.programs.iter().enumerate() {
            program
                .validate()
                .map_err(|error| SimError::InvalidProgram { core: i, error })?;
        }
        // Certificates describe "the core's next pop repeats this stall" —
        // a statement about one schedule's trajectory. Drop them between
        // runs so a different schedule starts clean.
        for m in &mut self.cert_meta {
            m.state = CertState::Empty;
        }
        self.cert_gen += 1;
        let clocks: Vec<u64> = self.cores.iter().map(|c| c.now).collect();
        sched.begin(&clocks);
        loop {
            let decision = sched.next_core(&MachinePeek {
                cores: &self.cores,
                programs: &self.programs,
                protocol: &self.protocol,
            });
            match decision {
                Some(Decision {
                    core: c,
                    bound,
                    storm_bound,
                }) => {
                    debug_assert!(
                        !self.cores[c].halted && !self.cores[c].at_barrier,
                        "schedule decided an unrunnable core {c}"
                    );
                    self.run_core(c, bound, storm_bound, sched)?;
                    let core = &self.cores[c];
                    sched.core_yielded(
                        c,
                        core.now,
                        !core.halted && !core.at_barrier,
                        self.cert_meta[c].state != CertState::Empty,
                    );
                }
                None => {
                    // No runnable core: either everyone halted, or every
                    // non-halted core is parked at the barrier.
                    if self.cores.iter().all(|c| c.halted) {
                        break;
                    }
                    self.release_barrier(sched);
                }
            }
        }
        Ok(self.report())
    }

    fn release_barrier<S: Schedule + ?Sized>(&mut self, sched: &mut S) {
        let release_at = self
            .cores
            .iter()
            .filter(|c| c.at_barrier)
            .map(|c| c.now)
            .max()
            .expect("release_barrier with no parked cores");
        for (i, c) in self.cores.iter_mut().enumerate() {
            if c.at_barrier {
                c.breakdown.barrier += release_at - c.now;
                c.now = release_at;
                c.at_barrier = false;
                sched.core_released(i, c.now);
            }
        }
    }

    fn report(&self) -> SimReport {
        let mut protocol_stats = retcon_htm::ProtocolStats::default();
        for i in 0..self.cores.len() {
            protocol_stats.merge(self.protocol.stats(CoreId(i)));
        }
        SimReport {
            protocol_name: self.protocol.name().to_string(),
            cycles: self.cores.iter().map(|c| c.now).max().unwrap_or(0),
            per_core: self
                .cores
                .iter()
                .map(|c| CoreReport {
                    breakdown: c.breakdown,
                    instructions: c.instructions,
                    finished_at: c.now,
                })
                .collect(),
            protocol: protocol_stats,
            retcon: self.protocol.retcon_stats(),
        }
    }

    /// Executes instructions on core `c` until its [`Bound`] expires: its
    /// `(clock, id)` reaches a [`Bound::Until`] key (the smallest key among
    /// the other runnable cores), one instruction attempt completes under
    /// [`Bound::Step`], it parks at a barrier, or it halts. [`Bound::Free`]
    /// means no other core is runnable.
    ///
    /// # Equivalence with single-stepping
    ///
    /// The old scheduler popped the heap, executed *one* instruction, and
    /// re-pushed. Batching is observationally identical because between
    /// two instructions of the same core (a) no other core's clock moves,
    /// (b) this core's clock never decreases, and (c) the cycle-limit and
    /// remote-abort checks run per instruction here exactly as they ran
    /// per pop there. The loop exits the moment another core's `(clock,
    /// id)` key becomes smaller, which is precisely when the old scheduler
    /// would have popped a different core.
    fn run_core<S: Schedule + ?Sized>(
        &mut self,
        c: usize,
        bound: Bound,
        storm_bound: Bound,
        sched: &mut S,
    ) -> Result<(), SimError> {
        let core_id = CoreId(c);
        let max_cycles = self.cfg.max_cycles;
        let stall_retry = self.cfg.stall_retry;
        let fast_forward = self.fast_forward;
        // Hoist the per-instruction borrows out of the loop: the protocol,
        // the memory system and this core's interpreter state are disjoint
        // fields, resolved once per batch instead of per instruction.
        let Machine {
            mem,
            protocol,
            cores,
            programs,
            cert_meta,
            cert_payload,
            cert_gen,
            clamp_cache,
            footprint,
            tracer,
            ..
        } = self;
        // Tracing is observation-only: every `trace` call below records a
        // decision the simulator has already made, into memory
        // preallocated before the run. `None` (the default) is one
        // never-taken branch per event site, like `footprint`.
        use retcon_obs::{EventKind, Tracer as _};
        macro_rules! trace {
            ($kind:expr, $at:expr, $arg:expr) => {
                if let Some(t) = tracer.as_deref_mut() {
                    t.record(c, $kind, $at, $arg);
                }
            };
        }
        // Split borrows around `c`: the fast-forward clamp below must read
        // peer cores' clocks and revalidate peer certificates while this
        // core's state is mutably borrowed.
        let (cores_lo, cores_rest) = cores.split_at_mut(c);
        let (core, cores_hi) = cores_rest.split_first_mut().expect("core index in range");
        let (meta_lo, meta_rest) = cert_meta.split_at_mut(c);
        let (meta, meta_hi) = meta_rest.split_first_mut().expect("core index in range");
        let (payload_lo, payload_rest) = cert_payload.split_at_mut(c);
        let (payload, payload_hi) = payload_rest.split_first_mut().expect("core index in range");
        let program = &programs[c];
        // Current basic block's instruction slice, refreshed only on
        // control transfers: the straight-line fetch is one indexed load.
        let mut block = core.pc.block;
        let mut instrs = program.block_instrs(block);
        // Transactional status for cycle accounting, tracked locally — it
        // only changes at the boundaries handled below, so the batch loop
        // charges cycles without a protocol query per instruction.
        let mut in_tx = protocol.tx_active(core_id);
        // Whether an instruction attempt already completed (Bound::Step
        // yields after exactly one; a restart forced by a *remote* abort is
        // bookkeeping, not an attempt, and does not consume the step).
        let mut stepped = false;
        loop {
            match bound {
                Bound::Until(b_clock, b_id) => {
                    if (core.now, c) >= (b_clock, b_id) {
                        return Ok(());
                    }
                }
                Bound::Step => {
                    if stepped {
                        return Ok(());
                    }
                }
                Bound::Free => {}
            }
            if core.now > max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            // A remote core may have aborted us before this batch; the
            // check stays per-instruction to mirror the protocols' abort
            // handshake exactly (DATM's cascades can raise the flag from
            // this core's own accesses).
            if protocol.take_aborted(core_id) {
                core.restart_tx();
                in_tx = false;
                trace!(EventKind::Abort, core.now, 2); // remote
                                                       // The abort rewound the pc: the certified stall (if any) is
                                                       // no longer this core's next action, and the contended
                                                       // block's version need not have moved when *this* core was
                                                       // the victim (its speculative bits may not cover that
                                                       // block). Drop the certificate; a fresh stall re-certifies.
                meta.state = CertState::Empty;
                *cert_gen += 1;
                continue;
            }
            // Stall-storm fast-forward (see [`CertPayload`]): while the
            // cached verdict's version sum stands still, the next attempt
            // of the instruction under `pc` provably stalls again with the
            // certified side effects — charge the retries the bound and
            // cycle limit admit in closed form instead of re-executing the
            // access. Falls through (and drops the certificate) the moment
            // the sum moves; the loop top above performs the real
            // bound/limit/abort exits exactly as per-retry execution would.
            if fast_forward && stall_retry > 0 {
                let valid = meta.state == CertState::Fresh
                    && (meta.epoch == mem.bump_epoch() || {
                        let revalidated = storm_version_sum(mem, &payload.storm) == payload.version;
                        if revalidated {
                            meta.epoch = mem.bump_epoch();
                        }
                        revalidated
                    });
                if valid {
                    {
                        let n = if sched.stall_jitter_free() {
                            // Retries until the bound expires (the checks
                            // above guarantee target > now) or the cycle
                            // limit is exceeded (the final retry may
                            // overshoot it; the loop top then errors).
                            let k_bound = if matches!(storm_bound, Bound::Step) {
                                1
                            } else {
                                // The relaxed storm bound may only be ridden
                                // past peers that are provably still storming:
                                // clamp it at the earliest stale-certificate
                                // peer (see `clamp_stale_peers`). The scan
                                // result is memoised across pops: storm pops
                                // cluster between real batches, and within a
                                // cluster neither the epoch nor the
                                // certificate set changes.
                                let stale_min = if clamp_cache.epoch == mem.bump_epoch()
                                    && clamp_cache.gen == *cert_gen
                                {
                                    clamp_cache.stale_min
                                } else {
                                    let mut sm = None;
                                    clamp_stale_peers(
                                        mem, meta_lo, payload_lo, cores_lo, 0, &mut sm,
                                    );
                                    clamp_stale_peers(
                                        mem,
                                        meta_hi,
                                        payload_hi,
                                        cores_hi,
                                        c + 1,
                                        &mut sm,
                                    );
                                    *clamp_cache = ClampCache {
                                        epoch: mem.bump_epoch(),
                                        gen: *cert_gen,
                                        stale_min: sm,
                                    };
                                    sm
                                };
                                let limit = match (storm_bound, stale_min) {
                                    (Bound::Until(t, i), Some(sk)) => Some(sk.min((t, i))),
                                    (Bound::Until(t, i), None) => Some((t, i)),
                                    (_, sk) => sk,
                                };
                                match limit {
                                    Some((b_clock, b_id)) => {
                                        let target = if c >= b_id {
                                            b_clock
                                        } else {
                                            b_clock.saturating_add(1)
                                        };
                                        (target - core.now).div_ceil(stall_retry)
                                    }
                                    None => u64::MAX,
                                }
                            };
                            let k_limit = (max_cycles - core.now) / stall_retry + 1;
                            let n = k_bound.min(k_limit).max(1);
                            match n.checked_mul(stall_retry) {
                                Some(charge) => {
                                    core.stall(charge);
                                    n
                                }
                                None => {
                                    core.stall(stall_retry);
                                    1
                                }
                            }
                        } else {
                            // Jittered schedules must observe every charge:
                            // one retry per iteration keeps their draws (and
                            // trace hashes) identical to real execution.
                            core.stall(stall_retry + sched.observe_stall(c, core.now));
                            1
                        };
                        protocol.apply_stall_retries(core_id, &payload.storm, n, mem);
                        trace!(EventKind::StormFf, core.now, n);
                        stepped = true;
                        continue;
                    }
                } else {
                    meta.state = CertState::Empty;
                    *cert_gen += 1;
                }
            }
            debug_assert_eq!(
                in_tx,
                protocol.tx_active(core_id),
                "batched in_tx fell out of sync on core {c}"
            );
            let pc = core.pc;
            if pc.block != block {
                block = pc.block;
                instrs = program.block_instrs(block);
            }
            let instr = *instrs
                .get(pc.index)
                .expect("validated program cannot run off the end");
            match instr {
                Instr::Imm { dst, value } => {
                    protocol.on_imm(core_id, dst);
                    core.regs[dst.index()] = value;
                    core.pc = pc.next();
                    core.charge(in_tx, 1);
                }
                Instr::Mov { dst, src } => {
                    protocol.on_mov(core_id, dst, src);
                    core.regs[dst.index()] = core.regs[src.index()];
                    core.pc = pc.next();
                    core.charge(in_tx, 1);
                }
                Instr::Bin { op, dst, lhs, rhs } => {
                    let lhs_val = core.regs[lhs.index()];
                    let rhs_val = core.operand_value(rhs);
                    let rhs_reg = match rhs {
                        Operand::Reg(r) => Some(r),
                        Operand::Imm(_) => None,
                    };
                    let result = protocol.on_alu(core_id, op, dst, lhs, rhs_reg, lhs_val, rhs_val);
                    core.regs[dst.index()] = result;
                    core.pc = pc.next();
                    core.charge(in_tx, 1);
                }
                Instr::Load { dst, addr, offset } => {
                    let a = Addr(core.regs[addr.index()]).offset(offset);
                    if let Some(fp) = footprint.as_mut() {
                        fp.insert(a.block().0);
                    }
                    match protocol.read(core_id, dst, a, Some(addr), mem, core.now) {
                        MemResult::Value { value, latency } => {
                            core.regs[dst.index()] = value;
                            core.pc = pc.next();
                            core.charge(in_tx, latency);
                        }
                        MemResult::Stall => {
                            core.stall(stall_retry + sched.observe_stall(c, core.now));
                            trace!(EventKind::Stall, core.now, a.block().0);
                            if fast_forward {
                                certify_storm(
                                    protocol,
                                    mem,
                                    c,
                                    StallAction::Read(a),
                                    meta,
                                    payload,
                                    cert_gen,
                                );
                            }
                        }
                        MemResult::Abort => {
                            core.restart_tx();
                            in_tx = false;
                            trace!(EventKind::Conflict, core.now, a.block().0);
                            trace!(EventKind::Abort, core.now, 0); // access
                        }
                    }
                }
                Instr::Store { src, addr, offset } => {
                    let a = Addr(core.regs[addr.index()]).offset(offset);
                    if let Some(fp) = footprint.as_mut() {
                        fp.insert(a.block().0);
                    }
                    let value = core.operand_value(src);
                    let src_reg = match src {
                        Operand::Reg(r) => Some(r),
                        Operand::Imm(_) => None,
                    };
                    match protocol.write(core_id, src_reg, value, a, Some(addr), mem, core.now) {
                        MemResult::Value { latency, .. } => {
                            core.pc = pc.next();
                            core.charge(in_tx, latency);
                        }
                        MemResult::Stall => {
                            core.stall(stall_retry + sched.observe_stall(c, core.now));
                            trace!(EventKind::Stall, core.now, a.block().0);
                            if fast_forward {
                                certify_storm(
                                    protocol,
                                    mem,
                                    c,
                                    StallAction::Write(a),
                                    meta,
                                    payload,
                                    cert_gen,
                                );
                            }
                        }
                        MemResult::Abort => {
                            core.restart_tx();
                            in_tx = false;
                            trace!(EventKind::Conflict, core.now, a.block().0);
                            trace!(EventKind::Abort, core.now, 0); // access
                        }
                    }
                }
                Instr::Branch {
                    op,
                    lhs,
                    rhs,
                    taken,
                    not_taken,
                } => {
                    let lhs_val = core.regs[lhs.index()];
                    let rhs_val = core.operand_value(rhs);
                    let rhs_reg = match rhs {
                        Operand::Reg(r) => Some(r),
                        Operand::Imm(_) => None,
                    };
                    let outcome = protocol.on_branch(core_id, op, lhs, rhs_reg, lhs_val, rhs_val);
                    core.pc = Pc::at(if outcome { taken } else { not_taken });
                    core.charge(in_tx, 1);
                }
                Instr::Jump { target } => {
                    core.pc = Pc::at(target);
                    core.charge(in_tx, 1);
                }
                Instr::Input { dst } => {
                    protocol.on_imm(core_id, dst);
                    let v = core.tape.next();
                    core.regs[dst.index()] = v;
                    core.pc = pc.next();
                    core.charge(in_tx, 1);
                }
                Instr::Work { cycles } => {
                    core.pc = pc.next();
                    core.charge(in_tx, cycles as u64);
                }
                Instr::TxBegin => {
                    debug_assert!(!protocol.tx_active(core_id), "nested TxBegin on core {c}");
                    protocol.tx_begin(core_id, core.now);
                    trace!(EventKind::TxBegin, core.now, 0);
                    core.tx_begin_pc = Some(pc);
                    core.reg_ckpt = core.regs;
                    core.tape.mark();
                    core.pc = pc.next();
                    in_tx = true;
                    core.charge(in_tx, 1);
                }
                Instr::TxCommit => {
                    match protocol.commit(core_id, mem, core.now) {
                        CommitResult::Committed {
                            latency,
                            reg_updates,
                        } => {
                            for &(r, v) in &reg_updates {
                                core.regs[r.index()] = v;
                            }
                            // The attempt's work becomes useful; commit
                            // processing is accounted as "other".
                            core.breakdown.busy += core.attempt_cycles + 1;
                            core.breakdown.other += latency;
                            core.attempt_cycles = 0;
                            core.tx_begin_pc = None;
                            core.now += latency + 1;
                            core.instructions += 1;
                            core.pc = pc.next();
                            in_tx = false;
                            // RETCON's repair-not-abort, visible at last:
                            // a commit that replayed symbolic register
                            // updates repaired instead of aborting.
                            if !reg_updates.is_empty() {
                                trace!(EventKind::Repair, core.now, reg_updates.len() as u64);
                            }
                            trace!(EventKind::Commit, core.now, latency);
                        }
                        CommitResult::Stall => {
                            core.stall(stall_retry + sched.observe_stall(c, core.now));
                            trace!(EventKind::Stall, core.now, 0); // commit-stall
                            if fast_forward {
                                certify_storm(
                                    protocol,
                                    mem,
                                    c,
                                    StallAction::Commit,
                                    meta,
                                    payload,
                                    cert_gen,
                                );
                            }
                        }
                        CommitResult::Abort => {
                            core.restart_tx();
                            in_tx = false;
                            trace!(EventKind::Abort, core.now, 1); // commit-time
                        }
                    }
                }
                Instr::Barrier => {
                    core.pc = pc.next();
                    core.at_barrier = true;
                    core.now += 1;
                    core.breakdown.busy += 1;
                    core.instructions += 1;
                    return Ok(());
                }
                Instr::Halt => {
                    core.halted = true;
                    return Ok(());
                }
            }
            stepped = true;
        }
    }
}

/// Dry-runs the stall the core just took through the protocol's
/// [`stall_storm`](AnyProtocol::stall_storm) oracle and, when the oracle
/// certifies a stable storm, stamps the verdict with its current
/// [`storm_version_sum`]. The result is the core's certificate
/// ([`CertMeta`] + [`CertPayload`]): as long as the sum still matches
/// when the core is next popped, a retry is provably a fixed point and
/// `run_core` charges it analytically instead of re-executing the
/// instruction.
fn certify_storm<const N: usize>(
    protocol: &AnyProtocol<N>,
    mem: &MemorySystem<N>,
    c: usize,
    action: StallAction,
    meta: &mut CertMeta,
    payload: &mut CertPayload<N>,
    cert_gen: &mut u64,
) {
    *cert_gen += 1;
    match protocol.stall_storm(CoreId(c), action, mem) {
        Some(storm) => {
            *payload = CertPayload {
                version: storm_version_sum(mem, &storm),
                storm,
            };
            *meta = CertMeta {
                state: CertState::Fresh,
                epoch: mem.bump_epoch(),
            };
        }
        None => meta.state = CertState::Empty,
    }
}

/// Tightens `limit` — the clock/core key a fast-forwarding core may charge
/// up to — by the keys of peers whose storm certificates have gone stale.
///
/// The storm-bound relaxation lets a certified core charge past *other
/// storming cores'* keys because skipped storm retries commute: they only
/// add to saturating predictor counters, stall counters and cache stats,
/// none of which a skip (or the oracle's verdict) reads. That argument
/// needs every passed peer to still be storming when its key comes up. A
/// peer whose certificate went stale (its version sum moved — e.g. this
/// very core's real actions earlier in the batch bumped a watched block)
/// will *re-execute* at its key, so charging past it would reorder real
/// work. Clamping at the earliest stale peer restores the frozen window:
/// nothing real runs before the clamped target, peer validity cannot
/// change inside it, and the induction over storming cores goes through.
///
/// Fresh peers are restamped with the current epoch (pure memoisation);
/// stale peers are left untouched — their own next pop drops the
/// certificate, and later callers must still observe the staleness.
fn clamp_stale_peers<const N: usize>(
    mem: &MemorySystem<N>,
    metas: &mut [CertMeta],
    payloads: &[CertPayload<N>],
    cores: &[Core],
    base: usize,
    limit: &mut Option<(u64, usize)>,
) {
    let epoch = mem.bump_epoch();
    for (off, peer) in metas.iter_mut().enumerate() {
        if peer.state == CertState::Fresh && peer.epoch != epoch {
            let p = &payloads[off];
            if storm_version_sum(mem, &p.storm) == p.version {
                peer.epoch = epoch;
            } else {
                peer.state = CertState::Stale;
            }
        }
        if peer.state == CertState::Stale {
            let key = (cores[off].now, base + off);
            if limit.map_or(true, |l| key < l) {
                *limit = Some(key);
            }
        }
    }
}

/// The read-only view a [`Schedule`] may consult before deciding: each
/// core's next action, derived from its program counter and registers.
struct MachinePeek<'a, const N: usize> {
    cores: &'a [Core],
    programs: &'a [Program],
    protocol: &'a AnyProtocol<N>,
}

impl<const N: usize> SchedulePeek for MachinePeek<'_, N> {
    fn num_cores(&self) -> usize {
        self.cores.len()
    }

    fn next_action(&self, c: usize) -> CoreAction {
        let core = &self.cores[c];
        if core.halted {
            return CoreAction::Local;
        }
        // A pending remote abort means this core's real next action is the
        // transaction restart — it re-executes from its TxBegin, and the
        // instruction (and address registers) under the current pc are
        // stale. Report the restart so exploration pruning never claims
        // independence for it (`CoreAction::conflicts_with` treats `Begin`
        // as conflicting with every transactional action).
        if self.protocol.abort_pending(CoreId(c)) {
            return CoreAction::Begin;
        }
        let instr = self.programs[c].block_instrs(core.pc.block)[core.pc.index];
        match instr {
            Instr::Load { addr, offset, .. } => {
                CoreAction::Read(Addr(core.regs[addr.index()]).offset(offset).block().0)
            }
            Instr::Store { addr, offset, .. } => {
                CoreAction::Write(Addr(core.regs[addr.index()]).offset(offset).block().0)
            }
            Instr::TxCommit => CoreAction::Commit,
            Instr::TxBegin => CoreAction::Begin,
            _ => CoreAction::Local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retcon::RetconConfig;
    use retcon_htm::{ConflictPolicy, EagerTm, LazyTm, LazyVbTm, RetconTm};
    use retcon_isa::{BinOp, CmpOp, ProgramBuilder, Reg};

    /// `iters` transactional double-increments of the counter at `addr`,
    /// with `work` abstract cycles inside the transaction.
    fn counter_program(addr: u64, iters: u64, work: u32) -> Program {
        let mut b = ProgramBuilder::new();
        let body = b.block();
        let done = b.block();
        b.imm(Reg(0), iters);
        b.imm(Reg(1), addr);
        b.jump(body);
        b.select(body);
        b.tx_begin();
        b.load(Reg(2), Reg(1), 0);
        b.add_imm(Reg(2), 1);
        b.store(Operand::Reg(Reg(2)), Reg(1), 0);
        if work > 0 {
            b.work(work);
        }
        b.load(Reg(2), Reg(1), 0);
        b.add_imm(Reg(2), 1);
        b.store(Operand::Reg(Reg(2)), Reg(1), 0);
        b.tx_commit();
        b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
        b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
        b.select(done);
        b.halt();
        b.build().unwrap()
    }

    fn run_counter(protocol: impl Into<AnyProtocol>, cores: usize, iters: u64) -> (SimReport, u64) {
        let cfg = SimConfig::with_cores(cores);
        let programs = (0..cores).map(|_| counter_program(0, iters, 5)).collect();
        let mut m: Machine = Machine::new(cfg, protocol, programs);
        let report = m.run().expect("run completes");
        (report, m.mem().read_word(Addr(0)))
    }

    #[test]
    fn single_core_counter_is_exact() {
        let (report, value) = run_counter(EagerTm::new(1, ConflictPolicy::OldestWins), 1, 50);
        assert_eq!(value, 100);
        assert_eq!(report.protocol.commits, 50);
        assert_eq!(report.protocol.aborts(), 0);
        assert_eq!(report.breakdown().conflict, 0);
    }

    #[test]
    fn eager_counter_serializes_correctly() {
        let (report, value) = run_counter(EagerTm::new(4, ConflictPolicy::OldestWins), 4, 25);
        assert_eq!(value, 4 * 25 * 2, "no lost updates");
        assert_eq!(report.protocol.commits, 100);
        // Heavy contention: conflicts must show up in the breakdown.
        assert!(report.breakdown().conflict > 0);
    }

    #[test]
    fn lazy_counter_serializes_correctly() {
        let (report, value) = run_counter(LazyTm::new(4), 4, 25);
        assert_eq!(value, 200);
        assert_eq!(report.protocol.commits, 100);
    }

    #[test]
    fn lazy_vb_counter_serializes_correctly() {
        let (report, value) = run_counter(LazyVbTm::new(4), 4, 25);
        assert_eq!(value, 200);
        assert_eq!(report.protocol.commits, 100);
        // Value validation aborts the racing increments.
        assert!(report.protocol.aborts_validation > 0);
    }

    #[test]
    fn retcon_counter_eliminates_aborts() {
        let cfg = RetconConfig {
            initial_threshold: 0,
            ..RetconConfig::default()
        };
        let (report, value) = run_counter(RetconTm::new(4, cfg), 4, 25);
        assert_eq!(value, 200, "symbolic repair preserves every increment");
        assert_eq!(report.protocol.commits, 100);
        assert_eq!(
            report.protocol.aborts(),
            0,
            "counter increments never conflict under RETCON"
        );
        let rs = report.retcon.expect("RETCON stats");
        assert_eq!(rs.transactions, 100);
        assert!(rs.avg_blocks_tracked() >= 1.0);
    }

    #[test]
    fn retcon_scales_better_than_eager_on_counter() {
        let (eager, _) = run_counter(EagerTm::new(8, ConflictPolicy::OldestWins), 8, 25);
        let cfg = RetconConfig {
            initial_threshold: 0,
            ..RetconConfig::default()
        };
        let (retcon, _) = run_counter(RetconTm::new(8, cfg), 8, 25);
        assert!(
            retcon.cycles < eager.cycles,
            "RETCON {} !< eager {}",
            retcon.cycles,
            eager.cycles
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || run_counter(EagerTm::new(4, ConflictPolicy::OldestWins), 4, 10).0;
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.protocol, b.protocol);
        for (x, y) in a.per_core.iter().zip(&b.per_core) {
            assert_eq!(x.breakdown, y.breakdown);
            assert_eq!(x.instructions, y.instructions);
        }
    }

    #[test]
    fn barrier_synchronizes_and_accounts_imbalance() {
        // Core 0 works 1000 cycles, core 1 works 10, then both hit a
        // barrier.
        let prog = |work: u32| {
            let mut b = ProgramBuilder::new();
            b.work(work);
            b.barrier();
            b.halt();
            b.build().unwrap()
        };
        let cfg = SimConfig::with_cores(2);
        let protocol = EagerTm::new(2, ConflictPolicy::OldestWins);
        let mut m: Machine = Machine::new(cfg, protocol, vec![prog(1000), prog(10)]);
        let report = m.run().unwrap();
        assert_eq!(report.per_core[0].breakdown.barrier, 0);
        assert_eq!(report.per_core[1].breakdown.barrier, 990);
        assert_eq!(
            report.per_core[0].finished_at,
            report.per_core[1].finished_at
        );
    }

    #[test]
    fn input_tape_rewinds_on_abort() {
        // Two cores transactionally append tape values to a shared counter;
        // aborts must not skip or duplicate tape entries.
        let prog = {
            let mut b = ProgramBuilder::new();
            let body = b.block();
            let done = b.block();
            b.imm(Reg(0), 20);
            b.imm(Reg(1), 0);
            b.jump(body);
            b.select(body);
            b.tx_begin();
            b.input(Reg(3));
            b.load(Reg(2), Reg(1), 0);
            b.bin(BinOp::Add, Reg(2), Reg(2), Operand::Reg(Reg(3)));
            b.store(Operand::Reg(Reg(2)), Reg(1), 0);
            b.tx_commit();
            b.bin(BinOp::Sub, Reg(0), Reg(0), Operand::Imm(1));
            b.branch(CmpOp::Gt, Reg(0), Operand::Imm(0), body, done);
            b.select(done);
            b.halt();
            b.build().unwrap()
        };
        let cfg = SimConfig::with_cores(2);
        let protocol = EagerTm::new(2, ConflictPolicy::OldestWins);
        let mut m: Machine = Machine::new(cfg, protocol, vec![prog.clone(), prog]);
        m.set_tape(0, vec![1; 20]);
        m.set_tape(1, vec![1; 20]);
        let report = m.run().unwrap();
        assert_eq!(m.mem().read_word(Addr(0)), 40);
        assert_eq!(report.protocol.commits, 40);
    }

    #[test]
    fn register_checkpoint_restored_on_abort() {
        // A transaction that increments a register *and* conflicts: after
        // the retries the register result must be as if executed once.
        let prog = {
            let mut b = ProgramBuilder::new();
            let store_back = b.block();
            let done = b.block();
            b.imm(Reg(5), 0); // accumulator incremented inside the tx
            b.imm(Reg(1), 0);
            b.jump(store_back);
            b.select(store_back);
            b.tx_begin();
            b.add_imm(Reg(5), 1); // would double-count if not checkpointed
            b.load(Reg(2), Reg(1), 0);
            b.add_imm(Reg(2), 1);
            b.store(Operand::Reg(Reg(2)), Reg(1), 0);
            b.tx_commit();
            b.jump(done);
            b.select(done);
            // Publish the accumulator non-transactionally at address 100+id.
            b.imm(Reg(6), 100);
            b.store(Operand::Reg(Reg(5)), Reg(6), 0);
            b.halt();
            b.build().unwrap()
        };
        // Run under heavy contention so aborts actually happen.
        let cfg = SimConfig::with_cores(2);
        let protocol = EagerTm::new(2, ConflictPolicy::OldestWins);
        let mut programs = Vec::new();
        for _ in 0..2 {
            programs.push(prog.clone());
        }
        let mut m: Machine = Machine::new(cfg, protocol, programs);
        let _ = m.run().unwrap();
        // Each core's accumulator must be exactly 1 regardless of retries.
        assert_eq!(m.mem().read_word(Addr(100)), 1);
    }

    #[test]
    fn cycle_limit_reported() {
        let mut b = ProgramBuilder::new();
        let spin = b.block();
        b.jump(spin);
        b.select(spin);
        b.jump(spin);
        let prog = b.build().unwrap();
        let mut cfg = SimConfig::with_cores(1);
        cfg.max_cycles = 1000;
        let mut m: Machine =
            Machine::new(cfg, EagerTm::new(1, ConflictPolicy::OldestWins), vec![prog]);
        assert!(matches!(m.run(), Err(SimError::CycleLimit { .. })));
    }

    #[test]
    fn breakdown_buckets_sum_to_core_time() {
        let (report, _) = run_counter(EagerTm::new(4, ConflictPolicy::OldestWins), 4, 10);
        for core in &report.per_core {
            assert_eq!(core.breakdown.total(), core.finished_at);
        }
    }
}
