//! Human-readable rendering of experiment records.
//!
//! One function per dataset, reproducing the tables the
//! `crates/bench/src/bin/` harnesses have always printed — the bins now
//! build an [`ExperimentRecord`] and render it through here, so stdout
//! output and machine-readable output come from the same data.

use crate::datasets::{
    ablation_workloads, scaling_workloads, table2_descriptions, Dataset, BACKOFF_SWEEP, CB_SWEEP,
    IVB_SWEEP, SCALING_CORES, SSB_SWEEP, XL_SCALING_CORES,
};
use crate::record::{ExperimentRecord, RunRecord};
use retcon_workloads::{System, Workload};
use std::fmt::Write as _;

/// Formats a speedup cell (the historical 8.1 width).
fn fmt_speedup(x: f64) -> String {
    format!("{x:>8.1}")
}

fn header(out: &mut String, title: &str, note: &str) {
    let _ = writeln!(
        out,
        "=================================================================="
    );
    let _ = writeln!(out, "{title}");
    if !note.is_empty() {
        let _ = writeln!(out, "{note}");
    }
    let _ = writeln!(
        out,
        "=================================================================="
    );
}

/// The four breakdown buckets of `run`, normalized to `reference_total`.
fn breakdown_row(run: &RunRecord, reference_total: u64) -> (f64, f64, f64, f64) {
    let b = run.report.breakdown();
    let r = reference_total as f64;
    (
        b.busy as f64 / r,
        b.conflict as f64 / r,
        b.barrier as f64 / r,
        b.other as f64 / r,
    )
}

/// Renders `record` as the dataset's historical stdout table.
pub fn render(dataset: Dataset, record: &ExperimentRecord) -> String {
    match dataset {
        Dataset::Table1 => render_table1(record),
        Dataset::Table2 => render_table2(record),
        Dataset::Fig1 => render_fig1(record),
        Dataset::Fig2 => render_fig2(record),
        Dataset::Fig3 => render_fig3(record),
        Dataset::Fig4 => render_fig4(record),
        Dataset::Fig9 => render_fig9(record),
        Dataset::Fig10 => render_fig10(record),
        Dataset::Table3 => render_table3(record),
        Dataset::AblationIdeal => render_ablation_ideal(record),
        Dataset::AblationSizes => render_ablation_sizes(record),
        Dataset::Scaling => render_scaling(record),
        Dataset::ScalingXl => render_scaling_xl(record),
    }
}

fn meta_or(record: &ExperimentRecord, key: &str) -> String {
    record.meta_value(key).unwrap_or("?").to_string()
}

fn render_table1(r: &ExperimentRecord) -> String {
    let mut out = String::new();
    header(&mut out, "Table 1: simulated machine configuration", "");
    let m = |k: &str| meta_or(r, k);
    let _ = writeln!(
        out,
        "Processor             {} in-order cores, 1 IPC",
        m("cores")
    );
    let _ = writeln!(
        out,
        "L1 cache              {} KB, {}-way set associative, 64B blocks ({} sets)",
        m("l1_kb"),
        m("l1_ways"),
        m("l1_sets")
    );
    let _ = writeln!(
        out,
        "L2 cache              Private, {} MB, {}-way, 64B blocks, {}-cycle hit latency",
        m("l2_mb"),
        m("l2_ways"),
        m("l2_hit_cycles")
    );
    let _ = writeln!(
        out,
        "Memory                {} cycles DRAM lookup latency",
        m("dram_cycles")
    );
    let _ = writeln!(
        out,
        "Permissions-only      unbounded overflow map (capacity aborts impossible)"
    );
    let _ = writeln!(
        out,
        "Coherence             directory-based, {}-cycle hop latency",
        m("hop_cycles")
    );
    let _ = writeln!(
        out,
        "RETCON structures     {}-entry initial value buffer, {}-entry constraint buffer, {}-entry symbolic store buffer",
        m("ivb_entries"),
        m("constraint_entries"),
        m("ssb_entries")
    );
    let _ = writeln!(
        out,
        "Predictor             track after {} conflict(s); back off {} conflicts on violation",
        m("predictor_threshold"),
        m("violation_backoff")
    );
    out
}

fn render_table2(r: &ExperimentRecord) -> String {
    let mut out = String::new();
    header(&mut out, "Table 2: workloads (model inventory)", "");
    let _ = writeln!(out, "{:<18} model", "workload");
    for (name, _) in table2_descriptions() {
        let _ = writeln!(out, "{name:<18} {}", meta_or(r, &format!("desc:{name}")));
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Per-workload static footprint (one 32-core build, seed {}):",
        r.seed
    );
    let _ = writeln!(
        out,
        "{:<18} {:>9} {:>12} {:>12}",
        "workload", "programs", "instr total", "tape words"
    );
    for w in Workload::all() {
        let cell = meta_or(r, &format!("footprint:{}", w.label()));
        let field = |key: &str| -> String {
            cell.split(';')
                .find_map(|p| p.strip_prefix(&format!("{key}=")))
                .unwrap_or("?")
                .to_string()
        };
        let _ = writeln!(
            out,
            "{:<18} {:>9} {:>12} {:>12}",
            w.label(),
            field("programs"),
            field("instr"),
            field("tape")
        );
    }
    out
}

fn render_fig1(r: &ExperimentRecord) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Figure 1: speedup over sequential, eager HTM baseline, 32 cores",
        "(zero-cycle rollback, oldest-wins contention management)",
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10} {:>9} {:>9}",
        "workload", "seq cyc", "par cyc", "speedup", "aborts/commit"
    );
    for w in Workload::fig1() {
        let Some(run) = r.find(w.label(), System::Eager.label()) else {
            continue;
        };
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>10} {:>9.1} {:>9.3}",
            w.label(),
            run.seq_cycles,
            run.report.cycles,
            run.speedup().unwrap_or(0.0),
            run.report.abort_ratio(),
        );
    }
    let _ = writeln!(
        out,
        "\n({} cores; deterministic seed; see EXPERIMENTS.md for paper-vs-measured)",
        crate::CORES
    );
    out
}

/// The Figure 2 display order: paper sub-figure label and system label.
fn fig2_rows() -> [(&'static str, System); 5] {
    [
        ("(a) RetCon", System::Retcon),
        ("(b) DATM", System::Datm),
        ("(c) Eager", System::EagerAbort),
        ("(d) EagerStall", System::Eager),
        ("(e) Lazy", System::Lazy),
    ]
}

fn render_fig2(r: &ExperimentRecord) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Figure 2: RETCON vs DATM vs Eager vs Eager-Stall vs Lazy",
        "counter micro-benchmark, 2 cores, two increments per transaction",
    );
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>9} {:>9} {:>9} {:>11}",
        "system", "cycles", "commits", "aborts", "stalls", "final-count"
    );
    for (label, system) in fig2_rows() {
        let Some(run) = r.find_at("counter", system.label(), 2) else {
            continue;
        };
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>9} {:>9} {:>9} {:>11}",
            label,
            run.report.cycles,
            run.report.protocol.commits,
            run.report.protocol.aborts(),
            run.report.protocol.stalls,
            run.report.protocol.commits * 2,
        );
    }
    let aborts = |s: System| {
        r.find_at("counter", s.label(), 2)
            .map(|run| run.report.protocol.aborts())
            .unwrap_or(0)
    };
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "RetCon aborts: {} (expected 0 after predictor warmup); eager aborts: {}; lazy aborts: {}",
        aborts(System::Retcon),
        aborts(System::EagerAbort),
        aborts(System::Lazy),
    );
    out
}

fn render_fig3(r: &ExperimentRecord) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Figure 3: baseline (eager) scalability before/after software restructurings",
        "",
    );
    let _ = writeln!(
        out,
        "{:<18} {:>9} {:>14}",
        "workload", "speedup", "abort/commit"
    );
    for w in Workload::fig9() {
        let Some(run) = r.find(w.label(), System::Eager.label()) else {
            continue;
        };
        let _ = writeln!(
            out,
            "{:<18} {:>9.1} {:>14.3}",
            w.label(),
            run.speedup().unwrap_or(0.0),
            run.report.abort_ratio()
        );
    }
    let _ = writeln!(
        out,
        "\nExpected shape: intruder_opt and vacation_opt jump past 20x;"
    );
    let _ = writeln!(
        out,
        "the -sz variants and python(-_opt) stay conflict-bound."
    );
    out
}

fn render_fig4(r: &ExperimentRecord) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Figure 4: time breakdown on the eager baseline (fractions of total)",
        "",
    );
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>9} {:>9} {:>8}",
        "workload", "busy", "conflict", "barrier", "other"
    );
    for w in Workload::fig9() {
        let Some(run) = r.find(w.label(), System::Eager.label()) else {
            continue;
        };
        let total = run.report.breakdown().total();
        let (busy, conflict, barrier, other) = breakdown_row(run, total);
        let _ = writeln!(
            out,
            "{:<18} {:>8.3} {:>9.3} {:>9.3} {:>8.3}",
            w.label(),
            busy,
            conflict,
            barrier,
            other
        );
    }
    let _ = writeln!(
        out,
        "\nExpected shape: -sz variants and python dominated by conflict;"
    );
    let _ = writeln!(
        out,
        "labyrinth by barrier (load imbalance); ssca2 mostly busy (memory-bound)."
    );
    out
}

/// Checks a Figure 9 row against the paper's qualitative claim.
pub fn fig9_shape_verdict(w: Workload, eager: f64, lazy_vb: f64, retcon: f64) -> &'static str {
    let rescued = retcon > 2.0 * lazy_vb.max(eager);
    match w.label() {
        // Auxiliary-data workloads: RETCON must be the clear winner.
        "genome-sz" | "intruder_opt-sz" | "vacation_opt-sz" | "python_opt" => {
            if rescued {
                "OK: RetCon rescues (paper: same)"
            } else {
                "MISMATCH: expected RetCon >> others"
            }
        }
        // Vacation base: lazy-vb (and RETCON) beat eager.
        "vacation" => {
            if lazy_vb > 1.5 * eager && retcon > 1.5 * eager {
                "OK: value-based detection helps (paper: same)"
            } else {
                "MISMATCH: expected lazy-vb/RetCon > eager"
            }
        }
        // Unrepairable workloads: all three within a small factor.
        "intruder" | "yada" | "python" => {
            if retcon < 2.0 * eager.max(1.0) {
                "OK: repair cannot help (paper: same)"
            } else {
                "MISMATCH: unexpected RetCon win"
            }
        }
        // Insensitive workloads: RETCON must track eager in *both*
        // directions (a regression to a fraction of eager is as much a
        // mismatch as an unexpected win), and both runs must exist.
        _ => {
            if retcon > 0.0 && eager > 0.0 && retcon < 2.0 * eager && eager < 2.0 * retcon {
                "OK: insensitive (paper: same)"
            } else {
                "MISMATCH"
            }
        }
    }
}

fn render_fig9(r: &ExperimentRecord) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Figure 9: speedup over sequential — eager vs lazy-vb vs RetCon vs DATM (32 cores)",
        "",
    );
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>8} {:>8} {:>8}   shape check",
        "workload", "eager", "lazy-vb", "RetCon", "datm"
    );
    for w in Workload::fig9() {
        let speedup = |s: System| r.speedup_of(w.label(), s.label()).unwrap_or(0.0);
        let (eager, lazy_vb, retcon, datm) = (
            speedup(System::Eager),
            speedup(System::LazyVb),
            speedup(System::Retcon),
            speedup(System::Datm),
        );
        let verdict = fig9_shape_verdict(w, eager, lazy_vb, retcon);
        let _ = writeln!(
            out,
            "{:<18}{}{}{}{}   {}",
            w.label(),
            fmt_speedup(eager),
            fmt_speedup(lazy_vb),
            fmt_speedup(retcon),
            fmt_speedup(datm),
            verdict
        );
    }
    out
}

fn render_fig10(r: &ExperimentRecord) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Figure 10: time breakdown normalized to eager (busy/conflict/barrier/other)",
        "",
    );
    let _ = writeln!(
        out,
        "{:<18} {:<9} {:>7} {:>9} {:>9} {:>7} {:>7}",
        "workload", "system", "busy", "conflict", "barrier", "other", "total"
    );
    for w in Workload::fig9() {
        let Some(eager_run) = r.find(w.label(), System::Eager.label()) else {
            continue;
        };
        let eager_total = eager_run.report.breakdown().total();
        for s in System::FIG9 {
            let Some(run) = r.find(w.label(), s.label()) else {
                continue;
            };
            let (busy, conflict, barrier, other) = breakdown_row(run, eager_total);
            let _ = writeln!(
                out,
                "{:<18} {:<9} {:>7.3} {:>9.3} {:>9.3} {:>7.3} {:>7.3}",
                w.label(),
                s.label(),
                busy,
                conflict,
                barrier,
                other,
                busy + conflict + barrier + other,
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "Expected shape: RetCon's conflict component collapses on the -sz"
    );
    let _ = writeln!(out, "variants and python_opt; elsewhere bars match eager.");
    out
}

fn render_table3(r: &ExperimentRecord) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Table 3: RETCON structure utilization and pre-commit overhead (32 cores)",
        "avg (max) per committed transaction",
    );
    let _ = writeln!(
        out,
        "{:<18} {:>11} {:>11} {:>10} {:>11} {:>11} {:>8} {:>7}",
        "workload",
        "blocks lost",
        "blk tracked",
        "sym regs",
        "priv stores",
        "constr addr",
        "commit",
        "stall%"
    );
    for w in Workload::all() {
        let Some(run) = r.find(w.label(), System::Retcon.label()) else {
            continue;
        };
        let Some(rs) = &run.report.retcon else {
            continue;
        };
        let _ = writeln!(
            out,
            "{:<18} {:>5.1} ({:>3}) {:>5.1} ({:>3}) {:>4.1} ({:>3}) {:>5.1} ({:>3}) {:>5.1} ({:>3}) {:>8.1} {:>6.2}",
            w.label(),
            rs.avg_blocks_lost(),
            rs.max.blocks_lost,
            rs.avg_blocks_tracked(),
            rs.max.blocks_tracked,
            rs.avg_symbolic_registers(),
            rs.max.symbolic_registers,
            rs.avg_private_stores(),
            rs.max.private_stores,
            rs.avg_constraint_addrs(),
            rs.max.constraint_addrs,
            rs.avg_commit_cycles(),
            rs.commit_stall_percent(),
        );
    }
    let _ = writeln!(
        out,
        "\n(violations are counted separately; a violation aborts and trains the predictor down)"
    );
    out
}

fn render_ablation_ideal(r: &ExperimentRecord) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "§5.3 ablation: default RETCON vs idealized (unlimited state, parallel reacquire, free stores)",
        "",
    );
    let _ = writeln!(
        out,
        "{:<18} {:>9} {:>9} {:>8}",
        "workload", "RetCon", "ideal", "delta%"
    );
    let mut worst: f64 = 0.0;
    for w in Workload::fig9() {
        let (Some(default), Some(ideal)) = (
            r.speedup_of(w.label(), System::Retcon.label()),
            r.speedup_of(w.label(), System::RetconIdeal.label()),
        ) else {
            continue;
        };
        let delta = 100.0 * (ideal - default) / default;
        worst = worst.max(delta.abs());
        let _ = writeln!(
            out,
            "{:<18} {:>9.1} {:>9.1} {:>+8.1}",
            w.label(),
            default,
            ideal,
            delta
        );
    }
    let _ = writeln!(
        out,
        "\nLargest |delta|: {worst:.1}% (paper: \"did not significantly impact results\")"
    );
    out
}

fn sweep_section<T: std::fmt::Display + Copy>(
    out: &mut String,
    r: &ExperimentRecord,
    title: &str,
    knob: &str,
    first_header: &str,
    caps: &[T],
    workloads: &[Workload],
) {
    header(out, title, "");
    let mut head = format!("{:<18}", "workload");
    for (i, cap) in caps.iter().enumerate() {
        if i == 0 {
            let _ = write!(head, " {first_header:>6}");
        } else {
            let _ = write!(head, " {cap:>6}");
        }
    }
    let _ = writeln!(out, "{head}");
    for w in workloads {
        let mut row = format!("{:<18}", w.label());
        for cap in caps {
            let speedup = r
                .runs
                .iter()
                .find(|run| run.workload == w.label() && run.knob(knob) == Some(&cap.to_string()))
                .and_then(RunRecord::speedup)
                .unwrap_or(0.0);
            let _ = write!(row, " {speedup:>6.1}");
        }
        let _ = writeln!(out, "{row}");
    }
}

fn render_ablation_sizes(r: &ExperimentRecord) -> String {
    let mut out = String::new();
    let workloads = ablation_workloads();
    sweep_section(
        &mut out,
        r,
        "Ablation: initial-value-buffer capacity sweep",
        "ivb",
        "ivb=1",
        &IVB_SWEEP,
        &workloads,
    );
    sweep_section(
        &mut out,
        r,
        "Ablation: symbolic-store-buffer capacity sweep",
        "ssb",
        "ssb=2",
        &SSB_SWEEP,
        &workloads,
    );
    sweep_section(
        &mut out,
        r,
        "Ablation: constraint-buffer capacity sweep",
        "cb",
        "cb=1",
        &CB_SWEEP,
        &workloads,
    );
    header(
        &mut out,
        "Ablation: predictor violation-backoff sweep (yada)",
        "",
    );
    let _ = writeln!(out, "{:>12} {:>9}", "backoff", "speedup");
    for backoff in BACKOFF_SWEEP {
        let speedup = r
            .runs
            .iter()
            .find(|run| run.workload == "yada" && run.knob("backoff") == Some(&backoff.to_string()))
            .and_then(RunRecord::speedup)
            .unwrap_or(0.0);
        let _ = writeln!(out, "{backoff:>12} {speedup:>9.1}");
    }
    let _ = writeln!(out, "\n(paper setting: 16/16/32 entries, backoff 100)");
    out
}

fn render_scaling(r: &ExperimentRecord) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Scaling sweep: speedup vs cores (eager | RetCon)",
        "",
    );
    for w in scaling_workloads() {
        let _ = writeln!(out, "\n{}:", w.label());
        let _ = writeln!(out, "{:>7} {:>9} {:>9}", "cores", "eager", "RetCon");
        for n in SCALING_CORES {
            let at = |s: System| {
                r.find_at(w.label(), s.label(), n as u64)
                    .and_then(RunRecord::speedup)
                    .unwrap_or(0.0)
            };
            let _ = writeln!(
                out,
                "{n:>7} {:>9.1} {:>9.1}",
                at(System::Eager),
                at(System::Retcon)
            );
        }
    }
    let _ = writeln!(
        out,
        "\nExpected: RetCon tracks ideal scaling on auxiliary-data workloads;"
    );
    let _ = writeln!(
        out,
        "eager flattens (or degrades) as contention on the hot words grows."
    );
    out
}

fn render_scaling_xl(r: &ExperimentRecord) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Scaling XL: group-local counters, 64-1024 cores (cycles)",
        "Work grows with the core count (64 tx/core), so flat cycles = ideal.",
    );
    let _ = writeln!(
        out,
        "{:>7} {:>12} {:>12} {:>12}",
        "cores", "eager", "lazy-vb", "RetCon"
    );
    for n in XL_SCALING_CORES {
        let at = |s: System| {
            r.find_at(Workload::ScalingXl.label(), s.label(), n as u64)
                .map(|run| run.report.cycles)
                .unwrap_or(0)
        };
        let _ = writeln!(
            out,
            "{n:>7} {:>12} {:>12} {:>12}",
            at(System::Eager),
            at(System::LazyVb),
            at(System::Retcon)
        );
    }
    let _ = writeln!(
        out,
        "\nExpected: contention is group-private (8 cores per counter), so"
    );
    let _ = writeln!(
        out,
        "cycles stay near-flat as groups are added; RetCon repairs the"
    );
    let _ = writeln!(
        out,
        "within-group conflicts that make eager's stall share grow."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_jobs;
    use crate::SEED;

    #[test]
    fn static_tables_render() {
        let t1 = Dataset::Table1.collect(1).unwrap();
        let text = render(Dataset::Table1, &t1);
        assert!(text.contains("16-entry initial value buffer"));
        let t2 = Dataset::Table2.collect(1).unwrap();
        let text = render(Dataset::Table2, &t2);
        assert!(text.contains("counter"));
        assert!(text.contains("tape words"));
    }

    #[test]
    fn fig2_renders_all_five_designs() {
        let record = ExperimentRecord {
            name: "fig2".to_string(),
            seed: SEED,
            meta: vec![],
            runs: run_jobs(&Dataset::Fig2.jobs(), 2).unwrap(),
        };
        let text = render(Dataset::Fig2, &record);
        for label in [
            "(a) RetCon",
            "(b) DATM",
            "(c) Eager",
            "(d) EagerStall",
            "(e) Lazy",
        ] {
            assert!(text.contains(label), "missing {label}:\n{text}");
        }
        assert!(text.contains("final-count"));
    }
}
