//! A blocking client for the daemon's line protocol.
//!
//! Used by `examples/serve_client.rs`, the root `tests/serve.rs` suite,
//! and the CI smoke job. One [`Client`] owns one connection; a sweep
//! call blocks until its `done` line, collecting streamed records back
//! into **canonical index order** so the returned record vector is
//! byte-identical to the offline runner's output for the same matrix.

use crate::proto::{DoneSummary, Request, Response, SweepRequest};
use retcon_lab::RunRecord;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// A completed sweep: records in canonical order plus dedup accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Run records, ordered by canonical sweep index (workload-major,
    /// then system, then cores, then seed).
    pub records: Vec<RunRecord>,
    /// Per-record cache flags, index-aligned with `records`.
    pub cached: Vec<bool>,
    /// Runs served from the result store.
    pub hits: u64,
    /// Runs joined onto executions already in flight.
    pub joined: u64,
    /// Runs this sweep caused to execute.
    pub misses: u64,
}

impl SweepResult {
    /// Fraction of runs served without a new execution (store hits plus
    /// single-flight joins), in `0.0..=1.0`.
    pub fn hit_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        (self.hits + self.joined) as f64 / self.records.len() as f64
    }
}

/// A blocking connection to a `retcon-serve` daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// Connection I/O errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), String> {
        let line = req.to_line();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    fn recv(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("recv failed: {e}"))?;
        if n == 0 {
            return Err("connection closed by daemon".to_string());
        }
        Response::parse_line(line.trim_end())
    }

    /// Runs one sweep and blocks until its `done` line.
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, a request-level rejection, any
    /// per-run error, or a record set that does not cover every index.
    pub fn sweep(&mut self, req: &SweepRequest) -> Result<SweepResult, String> {
        self.send(&Request::Sweep(req.clone()))?;
        let runs = req.explode().len();
        let mut slots: Vec<Option<(RunRecord, bool)>> = vec![None; runs];
        let summary: DoneSummary = loop {
            match self.recv()? {
                Response::Record {
                    id,
                    index,
                    cached,
                    run,
                } => {
                    if id != req.id {
                        return Err(format!("record for unexpected sweep id {id}"));
                    }
                    let slot = slots
                        .get_mut(index as usize)
                        .ok_or_else(|| format!("record index {index} out of range"))?;
                    if slot.replace((*run, cached)).is_some() {
                        return Err(format!("duplicate record for index {index}"));
                    }
                }
                Response::Done(summary) if summary.id == req.id => break summary,
                Response::Done(summary) => {
                    return Err(format!("done for unexpected sweep id {}", summary.id));
                }
                Response::Error { id, index, message } => {
                    return Err(match (id, index) {
                        (Some(id), Some(index)) => {
                            format!("sweep {id} run {index} failed: {message}")
                        }
                        (Some(id), None) => format!("sweep {id} rejected: {message}"),
                        _ => format!("request failed: {message}"),
                    });
                }
                other => return Err(format!("unexpected response: {other:?}")),
            }
        };
        if summary.errors > 0 {
            return Err(format!("{} runs failed", summary.errors));
        }
        let mut records = Vec::with_capacity(runs);
        let mut cached = Vec::with_capacity(runs);
        for (index, slot) in slots.into_iter().enumerate() {
            let (run, was_cached) = slot.ok_or_else(|| format!("missing record {index}"))?;
            records.push(run);
            cached.push(was_cached);
        }
        Ok(SweepResult {
            records,
            cached,
            hits: summary.hits,
            joined: summary.joined,
            misses: summary.misses,
        })
    }

    /// Fetches service counters.
    ///
    /// # Errors
    ///
    /// I/O failures or protocol violations.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, String> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(fields) => Ok(fields),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }

    /// Asks the daemon to drain and stop; returns its acknowledgement.
    ///
    /// # Errors
    ///
    /// I/O failures or protocol violations.
    pub fn shutdown(&mut self) -> Result<String, String> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::Ok(message) => Ok(message),
            other => Err(format!("unexpected response: {other:?}")),
        }
    }
}
