//! Contention management: the §2 timestamp-based "oldest transaction wins"
//! policy and the abort-the-requester policy of Figure 2(c).

use retcon_mem::CoreId;

/// How conflicts between a requester and transactional victims are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// The baseline policy (§2): the transaction with the smaller timestamp
    /// (earlier first-begin cycle) wins. A younger requester stalls behind
    /// an older victim; an older requester aborts younger victims. This is
    /// deadlock-free because transactions only ever wait on strictly older
    /// transactions. Non-transactional requesters always win.
    OldestWins,
    /// Figure 2(c)'s pure-eager behaviour: conflicts are resolved by
    /// aborting, never by stalling. The younger side aborts — the losing
    /// transaction "suffers repeated aborts until [the winner] commits",
    /// exactly the Figure 2(c) schedule. (Aborting the requester
    /// unconditionally would let two symmetric transactions re-establish
    /// each other's read bits forever — the classic dueling-upgrade
    /// livelock — which no real contention manager permits.)
    RequesterLoses,
}

/// A contention-manager verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Abort every conflicting victim; the requester proceeds.
    AbortVictims,
    /// The requester stalls and retries later.
    StallRequester,
    /// The requester's own transaction aborts.
    AbortRequester,
}

/// A transaction's age: its birth cycle (the cycle of its *first* begin,
/// surviving retries so the oldest transaction eventually wins) with the
/// core id as a deterministic tie-breaker.
pub(crate) type Age = (u64, usize);

/// Resolves a conflict between a requester and a set of victims.
///
/// `requester` is `None` for non-transactional accesses, which always win
/// (they cannot be rolled back or indefinitely stalled).
pub(crate) fn decide(
    policy: ConflictPolicy,
    requester: Option<Age>,
    victims: &[(CoreId, Age)],
) -> Decision {
    debug_assert!(!victims.is_empty(), "no conflict to resolve");
    let req = match requester {
        None => return Decision::AbortVictims,
        Some(age) => age,
    };
    let requester_oldest = victims.iter().all(|&(_, age)| req < age);
    match policy {
        ConflictPolicy::RequesterLoses => {
            if requester_oldest {
                Decision::AbortVictims
            } else {
                Decision::AbortRequester
            }
        }
        ConflictPolicy::OldestWins => {
            if requester_oldest {
                Decision::AbortVictims
            } else {
                Decision::StallRequester
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V0: (CoreId, Age) = (CoreId(0), (100, 0));
    const V1: (CoreId, Age) = (CoreId(1), (50, 1));

    #[test]
    fn non_tx_requester_always_wins() {
        for policy in [ConflictPolicy::OldestWins, ConflictPolicy::RequesterLoses] {
            assert_eq!(decide(policy, None, &[V0, V1]), Decision::AbortVictims);
        }
    }

    #[test]
    fn oldest_wins_aborts_younger_victims() {
        // Requester born at 10: older than both victims.
        assert_eq!(
            decide(ConflictPolicy::OldestWins, Some((10, 2)), &[V0, V1]),
            Decision::AbortVictims
        );
    }

    #[test]
    fn oldest_wins_stalls_younger_requester() {
        // Requester born at 70: younger than V1 (born 50).
        assert_eq!(
            decide(ConflictPolicy::OldestWins, Some((70, 2)), &[V0, V1]),
            Decision::StallRequester
        );
    }

    #[test]
    fn ties_break_by_core_id() {
        // Same birth cycle: the smaller core id counts as older.
        assert_eq!(
            decide(
                ConflictPolicy::OldestWins,
                Some((50, 0)),
                &[(CoreId(1), (50, 1))]
            ),
            Decision::AbortVictims
        );
        assert_eq!(
            decide(
                ConflictPolicy::OldestWins,
                Some((50, 2)),
                &[(CoreId(1), (50, 1))]
            ),
            Decision::StallRequester
        );
    }

    #[test]
    fn requester_loses_aborts_younger_side() {
        // Younger requester: aborts itself.
        assert_eq!(
            decide(ConflictPolicy::RequesterLoses, Some((200, 0)), &[V0]),
            Decision::AbortRequester
        );
        // Older requester: victims abort (never stalls under this policy).
        assert_eq!(
            decide(ConflictPolicy::RequesterLoses, Some((1, 0)), &[V0]),
            Decision::AbortVictims
        );
    }
}
