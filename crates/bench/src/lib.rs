//! Benchmark harnesses regenerating every table and figure of the RETCON
//! paper.
//!
//! Each binary in `src/bin/` reproduces one artifact of the evaluation
//! (§5); run them with `cargo run --release -p retcon-bench --bin <name>`:
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1` | Figure 1 — scalability of the aggressive eager HTM, 32 cores |
//! | `fig2` | Figure 2 — the two-increment counter schedule under RETCON, DATM, eager, eager-stall and lazy |
//! | `fig3` | Figure 3 — scalability before/after software restructurings |
//! | `fig4` | Figure 4 — runtime breakdown on the baseline |
//! | `table1` | Table 1 — simulated machine configuration |
//! | `table2` | Table 2 — workload inventory |
//! | `fig9` | Figure 9 — eager vs lazy-vb vs RETCON scalability |
//! | `fig10` | Figure 10 — runtime breakdown normalized to eager |
//! | `table3` | Table 3 — RETCON structure utilization and pre-commit overhead |
//! | `ablation_ideal` | §5.3 — default RETCON vs the idealized variant |
//! | `ablation_sizes` | structure-size and predictor-threshold sweeps |
//! | `scaling` | core-count sweep (1–32) for selected workloads |
//!
//! Absolute cycle counts come from our substitute substrate (a mini-ISA
//! simulator, not FeS2 running real binaries), so only the *shape* of each
//! result — who wins, by roughly what factor, where the crossovers are — is
//! expected to match the paper. `EXPERIMENTS.md` records paper-vs-measured
//! for every row.
//!
//! Since the `retcon-lab` refactor each bin is a thin wrapper over the
//! dataset of the same name: it builds a `retcon_lab::ExperimentRecord`
//! (job-parallel with `--jobs N`) and renders the historical stdout table,
//! or emits machine-readable output with `--json` / `--csv`. The helpers
//! below remain the convenient one-call API for ad-hoc experiments at the
//! paper's scale.

#![forbid(unsafe_code)]

use retcon_sim::SimReport;
use retcon_workloads::{run, sequential_baseline, System, Workload};

/// The seed used for every reported experiment (runs are fully
/// deterministic).
pub const SEED: u64 = 42;

/// The paper's core count.
pub const CORES: usize = 32;

/// Runs `workload` under `system` at the paper's core count, panicking with
/// a labelled message on simulator errors (these harnesses are
/// report-generators; failures should be loud).
pub fn run_at_scale(workload: Workload, system: System) -> SimReport {
    run(workload, system, CORES, SEED)
        .unwrap_or_else(|e| panic!("{} under {}: {e}", workload.label(), system.label()))
}

/// The sequential baseline cycle count for `workload`.
pub fn seq_cycles(workload: Workload) -> u64 {
    sequential_baseline(workload, SEED)
        .unwrap_or_else(|e| panic!("{} sequential baseline: {e}", workload.label()))
}

/// Formats a speedup cell.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:>8.1}")
}

/// Prints the standard header used by the figure harnesses.
pub fn print_header(title: &str, note: &str) {
    println!("==================================================================");
    println!("{title}");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("==================================================================");
}

/// A breakdown row normalized to a reference total, Figure 4/10 style.
pub fn breakdown_row(report: &SimReport, reference_total: u64) -> (f64, f64, f64, f64) {
    let b = report.breakdown();
    let r = reference_total as f64;
    (
        b.busy as f64 / r,
        b.conflict as f64 / r,
        b.barrier as f64 / r,
        b.other as f64 / r,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_helpers_run_a_small_workload() {
        // Use a tiny configuration (counter at 2 cores) through the public
        // workload API to keep the test fast.
        let report = run(Workload::Counter, System::Retcon, 2, SEED).unwrap();
        assert!(report.protocol.commits > 0);
        let (busy, conflict, barrier, other) = breakdown_row(&report, report.breakdown().total());
        let sum = busy + conflict + barrier + other;
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fmt_speedup_width() {
        assert_eq!(fmt_speedup(1.25).len(), 8);
    }
}
