//! Property tests for program construction and validation.

use proptest::prelude::*;

use retcon_isa::{
    BasicBlock, BinOp, BlockId, CmpOp, Instr, Operand, Program, ProgramBuilder, Reg, NUM_REGS,
};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0..NUM_REGS as u8).prop_map(Reg)
}

fn nonterminal_instr(max_block: u32) -> impl Strategy<Value = Instr> {
    let _ = max_block;
    prop_oneof![
        (reg_strategy(), any::<u64>()).prop_map(|(dst, value)| Instr::Imm { dst, value }),
        (reg_strategy(), reg_strategy()).prop_map(|(dst, src)| Instr::Mov { dst, src }),
        (reg_strategy(), reg_strategy(), -100i64..100).prop_map(|(dst, lhs, k)| Instr::Bin {
            op: BinOp::Add,
            dst,
            lhs,
            rhs: Operand::Imm(k),
        }),
        (reg_strategy(), reg_strategy(), -8i64..8).prop_map(|(dst, addr, offset)| Instr::Load {
            dst,
            addr,
            offset
        }),
        (reg_strategy(), reg_strategy(), -8i64..8).prop_map(|(src, addr, offset)| Instr::Store {
            src: Operand::Reg(src),
            addr,
            offset
        }),
        (0u32..1000).prop_map(|cycles| Instr::Work { cycles }),
        Just(Instr::TxBegin),
        Just(Instr::TxCommit),
    ]
}

proptest! {
    /// Programs assembled through the builder always validate.
    #[test]
    fn builder_output_always_validates(
        bodies in proptest::collection::vec(
            proptest::collection::vec(nonterminal_instr(4), 0..10),
            1..6
        ),
    ) {
        let mut b = ProgramBuilder::new();
        let nblocks = bodies.len();
        // Reserve every block up front so jumps can target any of them.
        let blocks: Vec<BlockId> = std::iter::once(b.entry())
            .chain((1..nblocks).map(|_| b.block()))
            .collect();
        for (i, body) in bodies.iter().enumerate() {
            b.select(blocks[i]);
            for instr in body {
                b.emit(*instr);
            }
            // Terminate: jump to the next block, or halt at the end.
            if i + 1 < nblocks {
                b.jump(blocks[i + 1]);
            } else {
                b.halt();
            }
        }
        let program = b.build().expect("builder output must validate");
        prop_assert!(program.validate().is_ok());
        prop_assert_eq!(program.blocks.len(), nblocks);
    }

    /// Validation rejects any program containing an out-of-range register.
    #[test]
    fn validation_catches_bad_registers(reg_idx in NUM_REGS as u8..=255u8) {
        let p = Program {
            blocks: vec![BasicBlock {
                instrs: vec![
                    Instr::Imm { dst: Reg(reg_idx), value: 0 },
                    Instr::Halt,
                ],
            }],
        };
        prop_assert!(p.validate().is_err());
    }

    /// Validation rejects any branch to a nonexistent block.
    #[test]
    fn validation_catches_bad_targets(target in 1u32..100) {
        let p = Program {
            blocks: vec![BasicBlock {
                instrs: vec![Instr::Branch {
                    op: CmpOp::Eq,
                    lhs: Reg(0),
                    rhs: Operand::Imm(0),
                    taken: BlockId(target),
                    not_taken: BlockId(0),
                }],
            }],
        };
        prop_assert!(p.validate().is_err());
    }

    /// Builder output still validates when blocks end in *randomized*
    /// branch/jump terminators targeting any reserved block (not just the
    /// straight-line chain of `builder_output_always_validates`).
    #[test]
    fn builder_with_random_terminators_validates(
        bodies in proptest::collection::vec(
            proptest::collection::vec(nonterminal_instr(4), 0..8),
            1..6
        ),
        term_choices in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 6),
    ) {
        let mut b = ProgramBuilder::new();
        let nblocks = bodies.len();
        let blocks: Vec<BlockId> = std::iter::once(b.entry())
            .chain((1..nblocks).map(|_| b.block()))
            .collect();
        for (i, body) in bodies.iter().enumerate() {
            b.select(blocks[i]);
            for instr in body {
                b.emit(*instr);
            }
            let (kind, t1, t2) = term_choices[i];
            match kind % 3 {
                0 => {
                    b.halt();
                }
                1 => {
                    b.jump(blocks[t1 as usize % nblocks]);
                }
                _ => {
                    b.branch(
                        CmpOp::Ne,
                        Reg(0),
                        Operand::Imm(0),
                        blocks[t1 as usize % nblocks],
                        blocks[t2 as usize % nblocks],
                    );
                }
            }
        }
        let program = b.build().expect("builder output must validate");
        prop_assert!(program.validate().is_ok());
    }

    /// Validation rejects an out-of-range register planted in *any* operand
    /// position of *any* register-bearing instruction kind.
    #[test]
    fn validation_catches_bad_register_in_any_position(
        reg_idx in NUM_REGS as u8..=255u8,
        shape in 0u8..8,
    ) {
        let bad = Reg(reg_idx);
        let ok = Reg(0);
        let instr = match shape {
            0 => Instr::Imm { dst: bad, value: 1 },
            1 => Instr::Mov { dst: bad, src: ok },
            2 => Instr::Mov { dst: ok, src: bad },
            3 => Instr::Bin { op: BinOp::Add, dst: ok, lhs: bad, rhs: Operand::Imm(1) },
            4 => Instr::Bin { op: BinOp::Add, dst: ok, lhs: ok, rhs: Operand::Reg(bad) },
            5 => Instr::Load { dst: ok, addr: bad, offset: 0 },
            6 => Instr::Store { src: Operand::Reg(bad), addr: ok, offset: 0 },
            _ => Instr::Store { src: Operand::Imm(3), addr: bad, offset: 0 },
        };
        let p = Program {
            blocks: vec![BasicBlock {
                instrs: vec![instr, Instr::Halt],
            }],
        };
        prop_assert!(
            matches!(p.validate(), Err(retcon_isa::ValidateError::BadRegister(_, _, r)) if r == bad)
        );
    }

    /// Validation rejects an out-of-range block id whether it appears as a
    /// jump target, the taken arm, or the not-taken arm.
    #[test]
    fn validation_catches_bad_block_in_any_arm(
        target in 1u32..100,
        arm in 0u8..3,
    ) {
        let bad = BlockId(target);
        let instr = match arm {
            0 => Instr::Jump { target: bad },
            1 => Instr::Branch {
                op: CmpOp::Eq,
                lhs: Reg(0),
                rhs: Operand::Imm(0),
                taken: bad,
                not_taken: BlockId(0),
            },
            _ => Instr::Branch {
                op: CmpOp::Eq,
                lhs: Reg(0),
                rhs: Operand::Imm(0),
                taken: BlockId(0),
                not_taken: bad,
            },
        };
        let p = Program {
            blocks: vec![BasicBlock { instrs: vec![instr] }],
        };
        prop_assert!(
            matches!(p.validate(), Err(retcon_isa::ValidateError::BadTarget(_, _, t)) if t == bad)
        );
    }

    /// `fetch` returns `Some` exactly for in-range program counters.
    #[test]
    fn fetch_matches_bounds(
        sizes in proptest::collection::vec(1usize..5, 1..4),
        probe_block in 0u32..6,
        probe_index in 0usize..8,
    ) {
        let mut b = ProgramBuilder::new();
        let nblocks = sizes.len();
        let blocks: Vec<BlockId> = std::iter::once(b.entry())
            .chain((1..nblocks).map(|_| b.block()))
            .collect();
        for (i, &size) in sizes.iter().enumerate() {
            b.select(blocks[i]);
            for _ in 0..size - 1 {
                b.work(1);
            }
            b.halt();
        }
        let p = b.build().expect("valid");
        let pc = retcon_isa::Pc {
            block: BlockId(probe_block),
            index: probe_index,
        };
        let in_range = (probe_block as usize) < nblocks
            && probe_index < sizes[probe_block.min(nblocks as u32 - 1) as usize];
        prop_assert_eq!(p.fetch(pc).is_some(), in_range);
    }
}
